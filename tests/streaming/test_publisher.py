"""Snapshot publication: health gate, rollback, zero-downtime swaps."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel, save_params
from repro.recommend.recommender import TemporalRecommender
from repro.streaming import SnapshotPublisher

pytestmark = pytest.mark.faults


def perturbed(params, seed):
    """A slightly different but healthy parameter set (same dimensions)."""
    rng = np.random.default_rng(seed)
    theta = params.theta * (1.0 + 0.01 * rng.random(params.theta.shape))
    theta /= theta.sum(axis=1, keepdims=True)
    return TTCAMParameters(
        theta=theta,
        phi=params.phi,
        theta_time=params.theta_time,
        phi_time=params.phi_time,
        lambda_u=params.lambda_u,
    )


@pytest.fixture()
def recommender(stream_base):
    return TemporalRecommender(LoadedModel(stream_base), method="bf")


class TestGate:
    def test_healthy_snapshot_publishes_and_bumps_generation(
        self, stream_base, recommender
    ):
        publisher = SnapshotPublisher(recommender)
        result = publisher.publish(perturbed(stream_base, 1))
        assert result.published
        assert result.generation == 1
        assert recommender.generation == 1
        assert recommender.swap_count == 1

    def test_probe_outside_snapshot_is_rejected(self, stream_base, recommender):
        publisher = SnapshotPublisher(
            recommender, probes=((stream_base.num_users + 7, 0),)
        )
        result = publisher.publish(perturbed(stream_base, 2))
        assert not result.published
        assert "probe user" in result.reason
        assert recommender.generation == 0
        assert recommender.rollback_count == 1

    def test_corrupt_snapshot_file_is_rejected_not_raised(
        self, stream_base, recommender, tmp_path
    ):
        path = save_params(perturbed(stream_base, 3), tmp_path / "snap.npz")
        path.write_bytes(path.read_bytes()[:100])  # truncate the archive
        publisher = SnapshotPublisher(recommender)
        result = publisher.publish_file(path)
        assert not result.published
        assert "snapshot rejected" in result.reason
        assert recommender.rollback_count == 1
        # Serving never went down.
        assert recommender.recommend(0, 0, k=3).recommendations

    def test_missing_snapshot_file_is_rejected(self, recommender, tmp_path):
        result = SnapshotPublisher(recommender).publish_file(tmp_path / "nope.npz")
        assert not result.published

    def test_good_snapshot_file_publishes(self, stream_base, recommender, tmp_path):
        path = save_params(perturbed(stream_base, 4), tmp_path / "snap.npz")
        result = SnapshotPublisher(recommender).publish_file(path)
        assert result.published
        assert recommender.generation == 1

    def test_mmap_snapshot_publishes_store_backed_model(
        self, stream_base, recommender, tmp_path
    ):
        candidate = perturbed(stream_base, 6)
        path = save_params(candidate, tmp_path / "snap.npz", mmap_layout=True)
        result = SnapshotPublisher(recommender).publish_file(path, mmap=True)
        assert result.published
        model = recommender.model
        assert model.param_store is not None
        np.testing.assert_array_equal(model.params_.theta, candidate.theta)
        assert recommender.recommend(0, 0, k=3).recommendations

    def test_drift_escalation_is_counted(self, stream_base, recommender):
        publisher = SnapshotPublisher(recommender)
        publisher.publish(perturbed(stream_base, 5), drift=True)
        assert recommender.drift_count == 1
        _, status = recommender.recommend_with_status(0, 0, k=3)
        assert status.drift_events == 1
        assert status.swaps == 1


class TestRevert:
    def test_revert_restores_previous_snapshot(self, stream_base, recommender):
        publisher = SnapshotPublisher(recommender)
        first = perturbed(stream_base, 6)
        second = perturbed(stream_base, 7)
        publisher.publish(first)
        publisher.publish(second)
        result = publisher.revert()
        assert result.published
        model = recommender.model
        assert isinstance(model, LoadedModel)
        np.testing.assert_array_equal(model.params_.theta, first.theta)
        assert recommender.rollback_count == 1
        assert recommender.generation == 3  # revert is itself a swap

    def test_revert_without_history_fails_safely(self, recommender):
        publisher = SnapshotPublisher(recommender)
        result = publisher.revert()
        assert not result.published
        assert recommender.generation == 0


class TestHotSwapUnderLoad:
    def test_concurrent_batches_see_single_consistent_generations(
        self, stream_base, recommender
    ):
        """The zero-downtime contract: swaps mid-traffic drop nothing.

        Four reader threads hammer ``recommend_batch_with_status`` while
        the main thread publishes ten fresh generations. Every batch
        must come back complete (no dropped queries) and every row of a
        batch must carry the *same* generation (no torn batches).
        """
        publisher = SnapshotPublisher(recommender)
        queries = [(u, t) for u in range(6) for t in range(3)]
        errors: list[BaseException] = []
        torn: list[tuple[int, ...]] = []
        dropped: list[int] = []
        generations_seen: set[int] = set()
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    results, statuses = recommender.recommend_batch_with_status(
                        queries, k=3
                    )
                    if len(results) != len(queries) or any(
                        not r.recommendations for r in results
                    ):
                        dropped.append(len(results))
                    batch_generations = {s.generation for s in statuses}
                    if len(batch_generations) != 1:
                        torn.append(tuple(sorted(batch_generations)))
                    generations_seen.update(batch_generations)
            except BaseException as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for seed in range(10):
                result = publisher.publish(perturbed(stream_base, 100 + seed))
                assert result.published
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, f"readers raised: {errors!r}"
        assert not torn, f"mixed-generation batches observed: {torn!r}"
        assert not dropped, f"incomplete batches observed: {dropped!r}"
        assert recommender.swap_count == 10
        # Readers observed some subset of the published generation line.
        assert generations_seen <= set(range(11))
