"""Incremental fold-in: micro-batches, new ids, drift, checkpoint/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness import CheckpointError
from repro.streaming import EventLog, StreamEvent, StreamIngestor

pytestmark = pytest.mark.faults

PARAM_FIELDS = ("theta", "phi", "theta_time", "phi_time", "lambda_u")


def fill_log(path, events):
    with EventLog(path) as log:
        log.append(events)
    return EventLog(path)


def in_range_events(params, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        StreamEvent(
            user=int(rng.integers(0, params.num_users)),
            interval=int(rng.integers(0, params.num_intervals)),
            item=int(rng.integers(0, params.num_items)),
            score=float(rng.integers(1, 4)),
        )
        for _ in range(count)
    ]


def assert_params_equal(a, b):
    for name in PARAM_FIELDS:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )


class TestFolding:
    def test_drains_log_and_advances_offset(self, stream_base, tmp_path):
        events = in_range_events(stream_base, 30)
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(
            log, stream_base, tmp_path / "ckpt", batch_events=8
        )
        report = ingestor.run()
        assert report.batches == 4  # 8+8+8+6
        assert report.applied == 30
        assert report.offset == 30
        assert ingestor.params.theta_time.shape == stream_base.theta_time.shape

    def test_parameters_stay_valid_distributions(self, stream_base, tmp_path):
        events = in_range_events(stream_base, 40, seed=3)
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(log, stream_base, tmp_path / "ckpt", batch_events=10)
        ingestor.run()
        params = ingestor.params
        np.testing.assert_allclose(params.theta_time.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.theta.sum(axis=1), 1.0)
        assert np.all((params.lambda_u >= 0) & (params.lambda_u <= 1))

    def test_new_interval_grows_the_time_axis(self, stream_base, tmp_path):
        top = stream_base.num_intervals
        events = [StreamEvent(user=0, interval=top + 1, item=1, score=2.0)]
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(log, stream_base, tmp_path / "ckpt")
        ingestor.run()
        assert ingestor.params.num_intervals == top + 2
        # The gap interval got no events, so it keeps the uniform prior.
        k2 = stream_base.num_time_topics
        np.testing.assert_allclose(ingestor.params.theta_time[top], 1.0 / k2)

    def test_new_users_fold_in_ascending_with_gap_priors(self, stream_base, tmp_path):
        top = stream_base.num_users
        events = [
            StreamEvent(user=top + 2, interval=0, item=3, score=2.0),
            StreamEvent(user=top, interval=1, item=4, score=1.0),
        ]
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(log, stream_base, tmp_path / "ckpt")
        ingestor.run()
        params = ingestor.params
        assert params.num_users == top + 3
        assert params.lambda_u.shape == (top + 3,)
        # The gap user (top + 1) got the cold-start prior.
        k1 = stream_base.num_user_topics
        np.testing.assert_allclose(params.theta[top + 1], 1.0 / k1)
        assert params.lambda_u[top + 1] == 0.5
        # Users with events moved off the prior.
        assert not np.allclose(params.theta[top + 2], 1.0 / k1)

    def test_out_of_catalogue_items_are_skipped_with_warning(
        self, stream_base, tmp_path
    ):
        events = [
            StreamEvent(user=0, interval=0, item=stream_base.num_items + 5),
            StreamEvent(user=1, interval=0, item=2),
        ]
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(log, stream_base, tmp_path / "ckpt")
        with pytest.warns(UserWarning, match="outside the fitted catalogue"):
            report = ingestor.run()
        assert report.skipped == 1
        assert report.applied == 1
        assert report.offset == 2  # skipped events are still consumed

    def test_context_jump_triggers_boundary_refit_and_checkpoint(
        self, stream_base, tmp_path
    ):
        events = [
            StreamEvent(user=0, interval=0, item=0, score=5.0),
            StreamEvent(user=1, interval=0, item=9, score=5.0),
        ]
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(
            log,
            stream_base,
            tmp_path / "ckpt",
            batch_events=4,
            drift_threshold=0.8,
            checkpoint_every=100,  # only boundary checkpoints can fire
        )
        # Seed interval 0 with a vector orthogonal to the positive
        # quadrant's diagonal: any fold-in estimate (a nonnegative unit
        # vector in K2=2) has cosine <= ~0.71 with it, a certain jump.
        ingestor.tracker.ensure_intervals(1)
        ingestor.tracker.vectors[0] = np.array([-1.0, 1.0]) / np.sqrt(2.0)
        ingestor.tracker.valid[0] = 1.0
        report = ingestor.run()
        assert report.boundaries == 1
        assert ingestor.refits == 1
        assert report.checkpoints == 1
        assert ingestor.manager.latest() is not None


class TestCheckpointResume:
    def test_resume_restores_offset_and_counters(self, stream_base, tmp_path):
        events = in_range_events(stream_base, 24, seed=1)
        log = fill_log(tmp_path / "wal", events)
        first = StreamIngestor(
            log, stream_base, tmp_path / "ckpt", batch_events=6, checkpoint_every=2
        )
        first.run(max_batches=2)  # checkpoint lands exactly at batch 2
        resumed = StreamIngestor(
            EventLog(tmp_path / "wal"),
            stream_base,
            tmp_path / "ckpt",
            batch_events=6,
            checkpoint_every=2,
        )
        assert resumed.offset == 12
        assert resumed.batches == 2
        assert resumed.applied == first.applied

    def test_kill_between_checkpoints_replays_bit_identically(
        self, stream_base, tmp_path
    ):
        events = in_range_events(stream_base, 40, seed=2)
        log = fill_log(tmp_path / "wal", events)
        # drift_threshold=-1 keeps boundary checkpoints out of the way so
        # the checkpoint cadence (and therefore the resume point) is exact.
        baseline = StreamIngestor(
            log,
            stream_base,
            tmp_path / "ckpt_base",
            batch_events=8,
            checkpoint_every=2,
            drift_threshold=-1.0,
        )
        baseline.run()
        # Crash-run: die after 3 batches (one past the last checkpoint).
        crashed = StreamIngestor(
            EventLog(tmp_path / "wal"),
            stream_base,
            tmp_path / "ckpt_crash",
            batch_events=8,
            checkpoint_every=2,
            drift_threshold=-1.0,
        )
        crashed.run(max_batches=3)
        resumed = StreamIngestor(
            EventLog(tmp_path / "wal"),
            stream_base,
            tmp_path / "ckpt_crash",
            batch_events=8,
            checkpoint_every=2,
            drift_threshold=-1.0,
        )
        assert resumed.offset == 16  # back at the batch-2 checkpoint
        resumed.run()
        assert_params_equal(resumed.params, baseline.params)
        assert resumed.applied == baseline.applied  # nothing double-applied
        assert resumed.offset == baseline.offset

    def test_mismatched_configuration_refuses_to_resume(self, stream_base, tmp_path):
        events = in_range_events(stream_base, 12, seed=4)
        log = fill_log(tmp_path / "wal", events)
        ingestor = StreamIngestor(
            log, stream_base, tmp_path / "ckpt", batch_events=4, checkpoint_every=1
        )
        ingestor.run()
        with pytest.raises(CheckpointError, match="different configuration"):
            StreamIngestor(
                EventLog(tmp_path / "wal"),
                stream_base,
                tmp_path / "ckpt",
                batch_events=5,  # changed: replay would diverge
                checkpoint_every=1,
            )

    def test_fresh_directory_starts_from_zero(self, stream_base, tmp_path):
        log = fill_log(tmp_path / "wal", in_range_events(stream_base, 5))
        ingestor = StreamIngestor(log, stream_base, tmp_path / "empty")
        assert ingestor.offset == 0
        assert ingestor.batches == 0


class TestValidation:
    def test_rejects_bad_knobs(self, stream_base, tmp_path):
        log = fill_log(tmp_path / "wal", [])
        with pytest.raises(ValueError, match="batch_events"):
            StreamIngestor(log, stream_base, tmp_path / "c", batch_events=0)
        with pytest.raises(ValueError, match="refit_iterations"):
            StreamIngestor(log, stream_base, tmp_path / "c", refit_iterations=0)
        with pytest.raises(ValueError, match="blend"):
            StreamIngestor(log, stream_base, tmp_path / "c", blend=0.0)
