"""Kill-anywhere property: resume is bit-identical to never crashing.

The crash-safety contract of the streaming pipeline, stated as one
property and searched by Hypothesis: for *any* event sequence (including
new users, new intervals, out-of-catalogue items, duplicates) and *any*
kill point (before any micro-batch, or inside any checkpoint write), a
run that crashes there and resumes from its durable state produces
bit-identical model parameters, drift state and consumer offset to a run
that was never interrupted — no event double-applied, none dropped.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.robustness import FaultInjector, InjectedFault
from repro.streaming import EventLog, StreamEvent, StreamIngestor

PARAM_FIELDS = ("theta", "phi", "theta_time", "phi_time", "lambda_u")

events_strategy = st.lists(
    st.tuples(
        st.integers(0, 13),  # users: up to 4 beyond the fitted 10
        st.integers(0, 5),  # intervals: up to 3 beyond the fitted 3
        st.integers(0, 17),  # items: up to 3 beyond the fitted 15 (skipped)
        st.floats(0.5, 3.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=36,
)


def run_ingestor(log_dir: Path, params, checkpoint_dir: Path) -> StreamIngestor:
    ingestor = StreamIngestor(
        EventLog(log_dir),
        params,
        checkpoint_dir,
        batch_events=7,
        checkpoint_every=2,
        drift_threshold=0.98,
    )
    ingestor.run()
    return ingestor


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=events_strategy,
    kill_batch=st.integers(0, 5),
    kill_site=st.sampled_from(["stream.batch", "stream.checkpoint"]),
)
def test_kill_anywhere_resume_is_bit_identical(
    stream_base, rows, kill_batch, kill_site
):
    events = [
        StreamEvent(user=u, interval=t, item=i, score=s) for u, t, i, s in rows
    ]
    with tempfile.TemporaryDirectory() as raw:
        root = Path(raw)
        with EventLog(root / "wal") as log:
            log.append(events)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            # The run that never crashes.
            baseline = run_ingestor(root / "wal", stream_base, root / "ckpt_ok")
            # The run that dies at the drawn kill point...
            crashed = StreamIngestor(
                EventLog(root / "wal"),
                stream_base,
                root / "ckpt_kill",
                batch_events=7,
                checkpoint_every=2,
                drift_threshold=0.98,
            )
            with FaultInjector() as chaos:
                chaos.crash(kill_site, batch=kill_batch)
                try:
                    crashed.run()
                except InjectedFault:
                    pass  # the simulated kill -9
            # ...and the process that replaces it, resuming durably.
            resumed = run_ingestor(root / "wal", stream_base, root / "ckpt_kill")

        for name in PARAM_FIELDS:
            np.testing.assert_array_equal(
                getattr(resumed.params, name),
                getattr(baseline.params, name),
                err_msg=f"{name} diverged after kill at {kill_site}#{kill_batch}",
            )
        np.testing.assert_array_equal(
            resumed.tracker.vectors, baseline.tracker.vectors
        )
        np.testing.assert_array_equal(resumed.tracker.valid, baseline.tracker.valid)
        assert resumed.offset == baseline.offset == len(events)
        assert resumed.applied == baseline.applied
        assert resumed.skipped == baseline.skipped
        assert resumed.boundaries == baseline.boundaries
