"""Shared fixtures for the streaming suite: one small fitted TTCAM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ttcam import TTCAM
from repro.data import RatingCuboid


@pytest.fixture(scope="session")
def stream_base():
    """A small fitted TTCAM parameter set (10 users, 3 intervals, 15 items)."""
    rng = np.random.default_rng(5)
    n = 240
    cuboid = RatingCuboid.from_arrays(
        users=rng.integers(0, 10, n),
        intervals=rng.integers(0, 3, n),
        items=rng.integers(0, 15, n),
        scores=rng.integers(1, 4, n).astype(float),
        num_users=10,
        num_intervals=3,
        num_items=15,
    )
    model = TTCAM(num_user_topics=3, num_time_topics=2, max_iter=8, seed=0)
    model.fit(cuboid)
    return model.params_
