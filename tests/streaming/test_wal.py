"""The durable event log: framing, rotation, recovery, batch atomicity."""

from __future__ import annotations

import pytest

from repro.robustness import EventLogCorruptError, FaultInjector, InjectedFault
from repro.streaming import EventLog, StreamEvent

pytestmark = pytest.mark.faults


def make_events(count, start=0):
    return [
        StreamEvent(user=i % 5, interval=i % 3, item=start + i, score=1.0 + i % 4)
        for i in range(count)
    ]


class TestEvents:
    def test_pack_unpack_roundtrip(self):
        event = StreamEvent(user=3, interval=7, item=11, score=2.5)
        record = event.pack()
        assert StreamEvent.unpack(record[8:]) == event

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            StreamEvent(user=-1, interval=0, item=0)

    def test_rejects_non_positive_score(self):
        with pytest.raises(ValueError, match="score"):
            StreamEvent(user=0, interval=0, item=0, score=0.0)


class TestAppendRead:
    def test_roundtrip_in_order(self, tmp_path):
        events = make_events(10)
        with EventLog(tmp_path / "wal") as log:
            assert log.append(events) == 10
        reopened = EventLog(tmp_path / "wal")
        assert list(reopened) == events
        assert reopened.read(3, 4) == events[3:7]

    def test_empty_append_is_a_noop(self, tmp_path):
        with EventLog(tmp_path / "wal") as log:
            assert log.append([]) == 0
            assert len(log) == 0

    def test_rotation_bounds_segments(self, tmp_path):
        with EventLog(tmp_path / "wal", segment_events=4) as log:
            log.append(make_events(10))
            assert len(log.segment_paths) == 3
        assert list(EventLog(tmp_path / "wal", segment_events=4)) == make_events(10)

    def test_read_validates_start(self, tmp_path):
        with EventLog(tmp_path / "wal") as log:
            log.append(make_events(2))
            with pytest.raises(ValueError, match="start"):
                log.read(5)

    def test_append_across_reopen_continues_offsets(self, tmp_path):
        with EventLog(tmp_path / "wal", segment_events=3) as log:
            log.append(make_events(4))
        with EventLog(tmp_path / "wal", segment_events=3) as log:
            assert log.next_offset == 4
            assert log.append(make_events(2, start=100)) == 6


class TestRecovery:
    def test_torn_tail_is_truncated_with_warning(self, tmp_path):
        with EventLog(tmp_path / "wal") as log:
            log.append(make_events(5))
        tail = sorted((tmp_path / "wal").glob("wal-*.log"))[-1]
        data = tail.read_bytes()
        tail.write_bytes(data[:-7])  # tear the last record mid-payload
        with pytest.warns(UserWarning, match="torn tail"):
            recovered = EventLog(tmp_path / "wal")
        assert list(recovered) == make_events(5)[:4]

    def test_recovered_log_accepts_new_appends(self, tmp_path):
        with EventLog(tmp_path / "wal") as log:
            log.append(make_events(3))
        tail = sorted((tmp_path / "wal").glob("wal-*.log"))[-1]
        tail.write_bytes(tail.read_bytes()[:-2])
        with pytest.warns(UserWarning, match="torn tail"):
            log = EventLog(tmp_path / "wal")
        log.append(make_events(1, start=50))
        log.close()
        assert len(EventLog(tmp_path / "wal")) == 3

    def test_corrupt_payload_in_tail_truncates_from_damage(self, tmp_path):
        with EventLog(tmp_path / "wal") as log:
            log.append(make_events(4))
        tail = sorted((tmp_path / "wal").glob("wal-*.log"))[-1]
        data = bytearray(tail.read_bytes())
        data[-5] ^= 0xFF  # flip a bit inside the last payload
        tail.write_bytes(bytes(data))
        with pytest.warns(UserWarning, match="torn tail"):
            recovered = EventLog(tmp_path / "wal")
        assert list(recovered) == make_events(4)[:3]

    def test_mid_log_damage_raises(self, tmp_path):
        with EventLog(tmp_path / "wal", segment_events=3) as log:
            log.append(make_events(7))
        first = sorted((tmp_path / "wal").glob("wal-*.log"))[0]
        first.write_bytes(first.read_bytes()[:-4])
        with pytest.raises(EventLogCorruptError, match="mid-log"):
            EventLog(tmp_path / "wal", segment_events=3)

    def test_unrecognised_file_name_raises(self, tmp_path):
        (tmp_path / "wal").mkdir()
        (tmp_path / "wal" / "wal-junk.log").write_bytes(b"TCAMWAL1")
        with pytest.raises(EventLogCorruptError, match="unrecognised"):
            EventLog(tmp_path / "wal")


class TestWriteFaults:
    def test_torn_write_recovers_to_pre_crash_state(self, tmp_path):
        events = make_events(6)
        with EventLog(tmp_path / "wal") as log:
            log.append(events[:3])
            with FaultInjector() as chaos:
                chaos.torn_write("wal.write", keep_fraction=0.4)
                with pytest.raises(InjectedFault):
                    log.append(events[3:])
        # The "process" died mid-write; a fresh open truncates the tear.
        with pytest.warns(UserWarning, match="torn tail"):
            recovered = EventLog(tmp_path / "wal")
        assert list(recovered) == events[:3]

    def test_disk_full_rolls_the_whole_batch_back(self, tmp_path):
        events = make_events(8)
        log = EventLog(tmp_path / "wal")
        log.append(events[:3])
        with FaultInjector() as chaos:
            chaos.disk_full("wal.write")
            with pytest.raises(OSError, match="disk-full"):
                log.append(events[3:])
        # Batch atomicity: none of the failed batch landed, log still usable.
        assert log.next_offset == 3
        log.append(events[3:])
        log.close()
        assert list(EventLog(tmp_path / "wal")) == events

    def test_disk_full_mid_batch_unwinds_partial_records(self, tmp_path):
        events = make_events(6)
        log = EventLog(tmp_path / "wal", segment_events=2)
        log.append(events[:2])
        with FaultInjector() as chaos:
            chaos.disk_full("wal.write", times=1, segment=2)
            with pytest.raises(OSError):
                log.append(events[2:])
        assert log.next_offset == 2
        assert len(log.segment_paths) == 1
        assert list(EventLog(tmp_path / "wal", segment_events=2)) == events[:2]

    def test_short_writes_are_retried_transparently(self, tmp_path):
        events = make_events(4)
        with EventLog(tmp_path / "wal") as log:
            with FaultInjector() as chaos:
                chaos.short_write("wal.write", keep_fraction=0.3, times=3)
                log.append(events)
            assert log.next_offset == 4
        assert list(EventLog(tmp_path / "wal")) == events


class TestValidation:
    def test_rejects_bad_segment_events(self, tmp_path):
        with pytest.raises(ValueError, match="segment_events"):
            EventLog(tmp_path / "wal", segment_events=0)

    def test_rejects_bad_sync_mode(self, tmp_path):
        with pytest.raises(ValueError, match="sync"):
            EventLog(tmp_path / "wal", sync="sometimes")

    def test_rotate_sync_mode_still_durable_after_close(self, tmp_path):
        with EventLog(tmp_path / "wal", sync="rotate") as log:
            log.append(make_events(5))
        assert len(EventLog(tmp_path / "wal")) == 5
