"""Checkpoint/resume determinism under injected crashes (acceptance a).

A run killed mid-training and resumed from its latest checkpoint must
finish with *bit-identical* parameters to the run that was never
interrupted — EM state is fully captured by the parameter arrays plus the
log-likelihood trace, and the RNG is only consulted at initialisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ITCAM, TTCAM, PartitionedTTCAM
from repro.robustness import (
    CheckpointError,
    CheckpointManager,
    FaultInjector,
    InjectedFault,
    ShardFailedError,
)

pytestmark = pytest.mark.faults


def _model(**overrides):
    defaults = dict(num_user_topics=3, num_time_topics=3, max_iter=20, seed=7)
    defaults.update(overrides)
    return TTCAM(**defaults)


def _assert_same_params(a, b):
    np.testing.assert_array_equal(a.theta, b.theta)
    np.testing.assert_array_equal(a.phi, b.phi)
    np.testing.assert_array_equal(a.theta_time, b.theta_time)
    np.testing.assert_array_equal(a.phi_time, b.phi_time)
    np.testing.assert_array_equal(a.lambda_u, b.lambda_u)


class TestKillAndResumeTTCAM:
    def test_resumed_run_is_bit_identical(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        baseline = _model().fit(cuboid)

        manager = CheckpointManager(tmp_path, every=3)
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", iteration=7)
            with pytest.raises(InjectedFault):
                _model().fit(cuboid, checkpoint=manager)
        assert chaos.fired == 1
        assert manager.latest().iteration == 6  # every=3, killed at 7

        resumed = _model().fit(cuboid, resume_from=manager)
        _assert_same_params(baseline.params_, resumed.params_)
        assert resumed.trace_.log_likelihood == baseline.trace_.log_likelihood

    def test_resume_accepts_directory_path(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        baseline = _model().fit(cuboid)
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", iteration=5)
            with pytest.raises(InjectedFault):
                _model().fit(cuboid, checkpoint=str(tmp_path))
        resumed = _model().fit(cuboid, resume_from=str(tmp_path))
        _assert_same_params(baseline.params_, resumed.params_)

    def test_resume_rejects_mismatched_config(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        manager = CheckpointManager(tmp_path, every=2)
        _model(max_iter=6).fit(cuboid, checkpoint=manager)
        with pytest.raises(CheckpointError, match="config"):
            _model(num_user_topics=4).fit(cuboid, resume_from=manager)

    def test_resume_with_empty_directory_starts_fresh(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        baseline = _model(max_iter=6).fit(cuboid)
        fresh = _model(max_iter=6).fit(cuboid, resume_from=str(tmp_path))
        _assert_same_params(baseline.params_, fresh.params_)

    def test_multi_init_fit_rejects_checkpointing(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        with pytest.raises(ValueError, match="n_init"):
            _model(n_init=2).fit(cuboid, checkpoint=str(tmp_path))


class TestKillAndResumeITCAM:
    def test_resumed_run_is_bit_identical(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        make = lambda: ITCAM(num_user_topics=3, max_iter=15, seed=3)
        baseline = make().fit(cuboid)
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", iteration=8)
            with pytest.raises(InjectedFault):
                make().fit(cuboid, checkpoint=str(tmp_path))
        resumed = make().fit(cuboid, resume_from=str(tmp_path))
        np.testing.assert_array_equal(baseline.params_.theta, resumed.params_.theta)
        np.testing.assert_array_equal(baseline.params_.phi, resumed.params_.phi)
        np.testing.assert_array_equal(
            baseline.params_.lambda_u, resumed.params_.lambda_u
        )


class TestShardFaults:
    def test_shard_crash_is_retried_transparently(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda: PartitionedTTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=10,
            seed=7,
            num_partitions=3,
            retry_backoff=0.0,
        )
        baseline = make().fit(cuboid)
        with FaultInjector() as chaos:
            chaos.crash("parallel.shard", shard=1, attempt=0)
            retried = make().fit(cuboid)
        assert chaos.fired == 1  # the retry ran clean
        _assert_same_params(baseline.params_, retried.params_)

    def test_persistent_shard_failure_raises_shard_error(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        model = PartitionedTTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=10,
            seed=7,
            num_partitions=3,
            max_shard_retries=1,
            retry_backoff=0.0,
        )
        with FaultInjector() as chaos:
            # A shard that fails every attempt exhausts its retries.
            chaos.crash("parallel.shard", shard=1, times=99)
            with pytest.raises(ShardFailedError, match="shard 1"):
                model.fit(cuboid)
        assert chaos.fired == 2  # first attempt + one retry

    def test_parallel_kill_and_resume(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        make = lambda: PartitionedTTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=10,
            seed=7,
            num_partitions=3,
        )
        baseline = make().fit(cuboid)
        manager = CheckpointManager(tmp_path, every=2)
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", iteration=5)
            with pytest.raises(InjectedFault):
                make().fit(cuboid, checkpoint=manager)
        resumed = make().fit(cuboid, resume_from=manager)
        _assert_same_params(baseline.params_, resumed.params_)

    def test_threaded_crash_retry_matches_serial(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda workers: PartitionedTTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=8,
            seed=7,
            num_partitions=3,
            workers=workers,
            retry_backoff=0.0,
        )
        baseline = make(1).fit(cuboid)
        with FaultInjector() as chaos:
            chaos.crash("parallel.shard", shard=2, attempt=0)
            threaded = make(2).fit(cuboid)
        assert chaos.fired == 1
        _assert_same_params(baseline.params_, threaded.params_)
