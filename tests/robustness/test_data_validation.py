"""Row validation and skip-and-count loading for ratings files."""

from __future__ import annotations

import pytest

from repro.data import DataValidationError, load_cuboid_csv, read_jsonl


def _write(tmp_path, rows):
    path = tmp_path / "ratings.csv"
    path.write_text("user,interval,item,score\n" + "\n".join(rows) + "\n")
    return path


GOOD = ["alice,0,pizza,1.0", "bob,1,sushi,2.0", "carol,0,tacos,1.5"]


class TestStrictValidation:
    def test_clean_file_loads(self, tmp_path):
        cuboid = load_cuboid_csv(_write(tmp_path, GOOD))
        assert cuboid.nnz == 3

    def test_negative_interval_names_the_line(self, tmp_path):
        path = _write(tmp_path, GOOD + ["dave,-2,pizza,1.0"])
        with pytest.raises(DataValidationError, match=r":5: negative interval"):
            load_cuboid_csv(path)

    def test_non_integer_interval(self, tmp_path):
        path = _write(tmp_path, ["alice,soon,pizza,1.0"])
        with pytest.raises(DataValidationError, match="not an integer"):
            load_cuboid_csv(path)

    def test_nan_score(self, tmp_path):
        path = _write(tmp_path, ["alice,0,pizza,nan"])
        with pytest.raises(DataValidationError, match="score is nan"):
            load_cuboid_csv(path)

    def test_non_positive_score(self, tmp_path):
        path = _write(tmp_path, ["alice,0,pizza,-3"])
        with pytest.raises(DataValidationError, match="must be positive"):
            load_cuboid_csv(path)

    def test_non_numeric_score(self, tmp_path):
        path = _write(tmp_path, ["alice,0,pizza,lots"])
        with pytest.raises(DataValidationError, match="not a number"):
            load_cuboid_csv(path)

    def test_empty_label(self, tmp_path):
        path = _write(tmp_path, [",0,pizza,1.0"])
        with pytest.raises(DataValidationError, match="empty user"):
            load_cuboid_csv(path)

    def test_missing_header_is_always_fatal(self, tmp_path):
        path = tmp_path / "headerless.csv"
        path.write_text("alice,0,pizza,1.0\n")
        with pytest.raises(DataValidationError, match="missing required columns"):
            load_cuboid_csv(path, strict=False)


class TestSkipAndCount:
    def test_bad_rows_are_skipped_with_summary_warning(self, tmp_path):
        path = _write(
            tmp_path, GOOD + ["dave,-2,pizza,1.0", "erin,0,sushi,nan"]
        )
        with pytest.warns(UserWarning, match=r"skipped 2 malformed row"):
            cuboid = load_cuboid_csv(path, strict=False)
        assert cuboid.nnz == 3

    def test_clean_file_warns_nothing(self, tmp_path, recwarn):
        load_cuboid_csv(_write(tmp_path, GOOD), strict=False)
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_warning_carries_first_failure(self, tmp_path):
        path = _write(tmp_path, ["alice,-1,pizza,1.0"] + GOOD)
        with pytest.warns(UserWarning, match=r":2: negative interval"):
            load_cuboid_csv(path, strict=False)


class TestJsonlValidation:
    def test_invalid_json_line_is_a_validation_error(self, tmp_path):
        path = tmp_path / "ratings.jsonl"
        path.write_text('{"user": "a", "interval": 0, "item": "x"}\nnot json\n')
        with pytest.raises(DataValidationError, match=r":2: invalid JSON"):
            list(read_jsonl(path))

    def test_non_strict_skips_invalid_json(self, tmp_path):
        path = tmp_path / "ratings.jsonl"
        path.write_text(
            '{"user": "a", "interval": 0, "item": "x"}\n'
            "not json\n"
            '{"user": "b", "interval": -1, "item": "y"}\n'
        )
        with pytest.warns(UserWarning, match="skipped 2"):
            ratings = list(read_jsonl(path, strict=False))
        assert len(ratings) == 1
        assert ratings[0].score == 1.0  # jsonl defaults a missing score
