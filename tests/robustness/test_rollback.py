"""Health-guard rollback under NaN poisoning (acceptance b).

A NaN injected into the EM state mid-training must be caught by the
:class:`HealthMonitor`, rolled back to the last good checkpoint with a
seeded re-jitter, and the fit must still converge to healthy parameters
— never silently emit NaN-laden ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TTCAM
from repro.robustness import (
    CheckpointManager,
    FaultInjector,
    HealthViolation,
)

pytestmark = pytest.mark.faults


def _model(**overrides):
    defaults = dict(num_user_topics=3, num_time_topics=3, max_iter=25, seed=7)
    defaults.update(overrides)
    return TTCAM(**defaults)


def _assert_healthy(model):
    params = model.params_
    for name in ("theta", "phi", "theta_time", "phi_time", "lambda_u"):
        assert np.all(np.isfinite(getattr(params, name))), name


class TestNaNRollback:
    def test_poisoned_run_recovers_and_converges(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        manager = CheckpointManager(tmp_path, every=3)
        with FaultInjector(seed=5) as chaos:
            chaos.poison_nan("em.state", iteration=5, cells=4, array="theta")
            model = _model().fit(cuboid, checkpoint=manager, monitor=True)
        assert chaos.fired == 1
        _assert_healthy(model)
        # The trace still ends in a (near-)converged state.
        ll = model.trace_.log_likelihood
        assert len(ll) >= 5
        assert ll[-1] >= ll[0]

    def test_rollback_without_checkpoint_restarts_from_init(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        with FaultInjector(seed=5) as chaos:
            chaos.poison_nan("em.state", iteration=2, array="phi")
            model = _model().fit(cuboid, monitor=True)
        assert chaos.fired == 1
        _assert_healthy(model)

    def test_unmonitored_fit_dies_instead_of_recovering(self, tiny_cuboid):
        # Without the monitor the poison propagates until the trace's own
        # non-finite guard kills the run — demonstrating the monitor is
        # what rescues the fit, not luck.
        cuboid, _ = tiny_cuboid
        with FaultInjector(seed=5) as chaos:
            chaos.poison_nan("em.state", iteration=3, cells=10, array="theta")
            with pytest.raises(FloatingPointError, match="non-finite"):
                _model(max_iter=6, tol=0.0).fit(cuboid)
        assert chaos.fired == 1

    def test_persistent_poison_exhausts_recoveries(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        manager = CheckpointManager(tmp_path, every=3)
        with FaultInjector(seed=5) as chaos:
            chaos.poison_nan("em.state", times=99, cells=2, array="theta")
            with pytest.raises(HealthViolation):
                _model().fit(cuboid, checkpoint=manager, monitor=True)
        assert chaos.fired >= 4  # initial hit + every post-rollback retry

    def test_recovered_fit_is_deterministic(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid

        def poisoned_fit(directory):
            manager = CheckpointManager(directory, every=3)
            with FaultInjector(seed=5) as chaos:
                chaos.poison_nan("em.state", iteration=5, cells=4, array="theta")
                return _model().fit(cuboid, checkpoint=manager, monitor=True)

        first = poisoned_fit(tmp_path / "a")
        second = poisoned_fit(tmp_path / "b")
        np.testing.assert_array_equal(first.params_.theta, second.params_.theta)
        np.testing.assert_array_equal(first.params_.phi, second.params_.phi)
