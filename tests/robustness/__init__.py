"""Fault-tolerance suite: checkpoints, health guards, fault injection."""
