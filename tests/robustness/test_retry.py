"""Deterministic retry with exponential backoff."""

from __future__ import annotations

import pytest

from repro.robustness import RetryExhaustedError, backoff_schedule, run_with_retry


class TestBackoffSchedule:
    def test_doubles_up_to_cap(self):
        assert backoff_schedule(0.1, 4, cap=0.5) == [0.1, 0.2, 0.4, 0.5]

    def test_empty_for_zero_retries(self):
        assert backoff_schedule(0.1, 0) == []


class TestRunWithRetry:
    def test_first_try_success_never_sleeps(self):
        slept = []
        result = run_with_retry(
            lambda attempt: "ok", retries=3, sleep=slept.append
        )
        assert result == "ok"
        assert slept == []

    def test_retries_until_success(self):
        slept = []

        def flaky(attempt):
            if attempt < 2:
                raise RuntimeError(f"fail {attempt}")
            return attempt

        result = run_with_retry(
            flaky, retries=3, backoff=0.1, max_backoff=10.0, sleep=slept.append
        )
        assert result == 2
        assert slept == [0.1, 0.2]

    def test_exhaustion_raises_with_attempts_and_cause(self):
        def always_fails(attempt):
            raise RuntimeError("nope")

        with pytest.raises(RetryExhaustedError, match="doomed") as excinfo:
            run_with_retry(
                always_fails,
                retries=2,
                label="doomed",
                sleep=lambda _: None,
            )
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_custom_error_class(self):
        class ShardBoom(RetryExhaustedError):
            """Marker subclass for the test."""

        with pytest.raises(ShardBoom):
            run_with_retry(
                lambda attempt: (_ for _ in ()).throw(RuntimeError("x")),
                retries=0,
                sleep=lambda _: None,
                error=ShardBoom,
            )
