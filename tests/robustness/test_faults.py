"""The fault-injection harness itself: plans, matching, determinism."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.robustness import (
    FaultInjector,
    InjectedFault,
    active_injector,
    fault_point,
    maybe_poison,
    truncate_file,
)

pytestmark = pytest.mark.faults


class TestHooksAreNoOpsWhenDisarmed:
    def test_fault_point_does_nothing(self):
        assert active_injector() is None
        fault_point("em.iteration", iteration=0)  # must not raise

    def test_maybe_poison_returns_input_unchanged(self):
        arrays = {"theta": np.ones((2, 2))}
        assert maybe_poison("em.state", arrays) is arrays


class TestCrash:
    def test_fires_exactly_times(self):
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", times=2)
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("em.iteration", iteration=0)
            fault_point("em.iteration", iteration=2)  # budget exhausted
            assert chaos.fired == 2

    def test_context_matching(self):
        with FaultInjector() as chaos:
            chaos.crash("parallel.shard", shard=1, attempt=0)
            fault_point("parallel.shard", shard=0, attempt=0)
            fault_point("parallel.shard", shard=1, attempt=1)
            with pytest.raises(InjectedFault):
                fault_point("parallel.shard", shard=1, attempt=0)
            assert chaos.fired == 1

    def test_site_matching(self):
        with FaultInjector() as chaos:
            chaos.crash("em.iteration")
            fault_point("parallel.shard", shard=0)
            assert chaos.fired == 0


class TestDelay:
    def test_sleeps_for_configured_seconds(self):
        with FaultInjector() as chaos:
            chaos.delay("parallel.shard", seconds=0.05, shard=0)
            start = time.perf_counter()
            fault_point("parallel.shard", shard=0, attempt=0)
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.05
        assert chaos.fired == 1


class TestPoison:
    def test_injects_exactly_n_nans(self):
        arrays = {"theta": np.ones((4, 4)), "phi": np.ones((3, 3))}
        with FaultInjector(seed=5) as chaos:
            chaos.poison_nan("em.state", cells=3, array="theta")
            poisoned = maybe_poison("em.state", arrays)
        nans = int(np.isnan(poisoned["theta"]).sum())
        assert 1 <= nans <= 3  # seeded indices may repeat
        assert not np.isnan(poisoned["phi"]).any()
        # the input arrays are never mutated in place
        assert not np.isnan(arrays["theta"]).any()

    def test_seeded_poison_is_deterministic(self):
        arrays = {"theta": np.ones((6, 6))}

        def poison_once():
            with FaultInjector(seed=11) as chaos:
                chaos.poison_nan("em.state", cells=2, array="theta")
                return maybe_poison("em.state", arrays)["theta"]

        np.testing.assert_array_equal(poison_once(), poison_once())

    def test_context_matched_poison(self):
        arrays = {"theta": np.ones(4)}
        with FaultInjector() as chaos:
            chaos.poison_nan("em.state", iteration=5, array="theta")
            clean = maybe_poison("em.state", arrays, iteration=4)
            dirty = maybe_poison("em.state", arrays, iteration=5)
        assert not np.isnan(clean["theta"]).any()
        assert np.isnan(dirty["theta"]).any()


class TestContextManagement:
    def test_nesting_is_rejected(self):
        with FaultInjector():
            with pytest.raises(RuntimeError, match="already active"):
                with FaultInjector():
                    pass

    def test_disarms_on_exit(self):
        with FaultInjector():
            assert active_injector() is not None
        assert active_injector() is None

    def test_disarms_on_exception(self):
        with pytest.raises(ValueError, match="boom"):
            with FaultInjector():
                raise ValueError("boom")
        assert active_injector() is None


class TestTruncateFile:
    def test_truncates_in_place(self, tmp_path):
        target = tmp_path / "snapshot.npz"
        target.write_bytes(b"x" * 1000)
        truncate_file(target, keep_fraction=0.3)
        assert target.stat().st_size == 300

    def test_rejects_bad_fraction(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"abc")
        with pytest.raises(ValueError, match="keep_fraction"):
            truncate_file(target, keep_fraction=1.0)


class TestWriteFaults:
    """The write-fault hook: disk-full, torn and short delivery modes."""

    def _write(self, tmp_path, data=b"0123456789", **plan):
        from repro.robustness import faulty_write

        target = tmp_path / "out.bin"
        with FaultInjector() as chaos:
            for mode, kwargs in plan.items():
                getattr(chaos, mode)("io.write", **kwargs)
            with target.open("wb") as handle:
                written = faulty_write("io.write", handle, data)
        return target, written

    def test_passthrough_when_disarmed(self, tmp_path):
        from repro.robustness import faulty_write

        target = tmp_path / "out.bin"
        with target.open("wb") as handle:
            assert faulty_write("io.write", handle, b"abc") == 3
        assert target.read_bytes() == b"abc"

    def test_disk_full_raises_enospc_before_writing(self, tmp_path):
        import errno

        from repro.robustness import faulty_write

        target = tmp_path / "out.bin"
        with FaultInjector() as chaos:
            chaos.disk_full("io.write")
            with target.open("wb") as handle:
                with pytest.raises(OSError) as excinfo:
                    faulty_write("io.write", handle, b"abcdef")
        assert excinfo.value.errno == errno.ENOSPC
        assert target.read_bytes() == b""  # nothing landed

    def test_torn_write_leaves_prefix_then_crashes(self, tmp_path):
        from repro.robustness import faulty_write

        target = tmp_path / "out.bin"
        with FaultInjector() as chaos:
            chaos.torn_write("io.write", keep_fraction=0.4)
            with target.open("wb") as handle:
                with pytest.raises(InjectedFault):
                    faulty_write("io.write", handle, b"0123456789")
        assert target.read_bytes() == b"0123"  # the torn prefix survived

    def test_short_write_returns_partial_count(self, tmp_path):
        target, written = self._write(
            tmp_path, short_write=dict(keep_fraction=0.3)
        )
        assert written == 3
        assert target.read_bytes() == b"012"

    def test_short_write_budget_exhausts(self, tmp_path):
        from repro.robustness import faulty_write

        target = tmp_path / "out.bin"
        with FaultInjector() as chaos:
            chaos.short_write("io.write", keep_fraction=0.5, times=1)
            with target.open("wb") as handle:
                first = faulty_write("io.write", handle, b"abcd")
                second = faulty_write("io.write", handle, b"abcd"[first:])
        assert first == 2
        assert second == 2  # plan spent; remainder written in full
        assert target.read_bytes() == b"abcd"

    def test_write_faults_respect_context_matching(self, tmp_path):
        from repro.robustness import faulty_write

        target = tmp_path / "out.bin"
        with FaultInjector() as chaos:
            chaos.disk_full("io.write", segment=7)
            with target.open("wb") as handle:
                assert faulty_write("io.write", handle, b"ok", segment=3) == 2
                with pytest.raises(OSError):
                    faulty_write("io.write", handle, b"no", segment=7)

    def test_keep_fraction_validated(self):
        with FaultInjector() as chaos:
            with pytest.raises(ValueError, match="keep_fraction"):
                chaos.torn_write("io.write", keep_fraction=1.5)
            with pytest.raises(ValueError, match="keep_fraction"):
                chaos.short_write("io.write", keep_fraction=-0.1)
