"""The fault-injection harness itself: plans, matching, determinism."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.robustness import (
    FaultInjector,
    InjectedFault,
    active_injector,
    fault_point,
    maybe_poison,
    truncate_file,
)

pytestmark = pytest.mark.faults


class TestHooksAreNoOpsWhenDisarmed:
    def test_fault_point_does_nothing(self):
        assert active_injector() is None
        fault_point("em.iteration", iteration=0)  # must not raise

    def test_maybe_poison_returns_input_unchanged(self):
        arrays = {"theta": np.ones((2, 2))}
        assert maybe_poison("em.state", arrays) is arrays


class TestCrash:
    def test_fires_exactly_times(self):
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", times=2)
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("em.iteration", iteration=0)
            fault_point("em.iteration", iteration=2)  # budget exhausted
            assert chaos.fired == 2

    def test_context_matching(self):
        with FaultInjector() as chaos:
            chaos.crash("parallel.shard", shard=1, attempt=0)
            fault_point("parallel.shard", shard=0, attempt=0)
            fault_point("parallel.shard", shard=1, attempt=1)
            with pytest.raises(InjectedFault):
                fault_point("parallel.shard", shard=1, attempt=0)
            assert chaos.fired == 1

    def test_site_matching(self):
        with FaultInjector() as chaos:
            chaos.crash("em.iteration")
            fault_point("parallel.shard", shard=0)
            assert chaos.fired == 0


class TestDelay:
    def test_sleeps_for_configured_seconds(self):
        with FaultInjector() as chaos:
            chaos.delay("parallel.shard", seconds=0.05, shard=0)
            start = time.perf_counter()
            fault_point("parallel.shard", shard=0, attempt=0)
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.05
        assert chaos.fired == 1


class TestPoison:
    def test_injects_exactly_n_nans(self):
        arrays = {"theta": np.ones((4, 4)), "phi": np.ones((3, 3))}
        with FaultInjector(seed=5) as chaos:
            chaos.poison_nan("em.state", cells=3, array="theta")
            poisoned = maybe_poison("em.state", arrays)
        nans = int(np.isnan(poisoned["theta"]).sum())
        assert 1 <= nans <= 3  # seeded indices may repeat
        assert not np.isnan(poisoned["phi"]).any()
        # the input arrays are never mutated in place
        assert not np.isnan(arrays["theta"]).any()

    def test_seeded_poison_is_deterministic(self):
        arrays = {"theta": np.ones((6, 6))}

        def poison_once():
            with FaultInjector(seed=11) as chaos:
                chaos.poison_nan("em.state", cells=2, array="theta")
                return maybe_poison("em.state", arrays)["theta"]

        np.testing.assert_array_equal(poison_once(), poison_once())

    def test_context_matched_poison(self):
        arrays = {"theta": np.ones(4)}
        with FaultInjector() as chaos:
            chaos.poison_nan("em.state", iteration=5, array="theta")
            clean = maybe_poison("em.state", arrays, iteration=4)
            dirty = maybe_poison("em.state", arrays, iteration=5)
        assert not np.isnan(clean["theta"]).any()
        assert np.isnan(dirty["theta"]).any()


class TestContextManagement:
    def test_nesting_is_rejected(self):
        with FaultInjector():
            with pytest.raises(RuntimeError, match="already active"):
                with FaultInjector():
                    pass

    def test_disarms_on_exit(self):
        with FaultInjector():
            assert active_injector() is not None
        assert active_injector() is None

    def test_disarms_on_exception(self):
        with pytest.raises(ValueError, match="boom"):
            with FaultInjector():
                raise ValueError("boom")
        assert active_injector() is None


class TestTruncateFile:
    def test_truncates_in_place(self, tmp_path):
        target = tmp_path / "snapshot.npz"
        target.write_bytes(b"x" * 1000)
        truncate_file(target, keep_fraction=0.3)
        assert target.stat().st_size == 300

    def test_rejects_bad_fraction(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"abc")
        with pytest.raises(ValueError, match="keep_fraction"):
            truncate_file(target, keep_fraction=1.0)
