"""Graceful serving degradation (acceptance c).

A truncated/corrupt snapshot, or a query outside the fitted model's
range, must be answered by the fallback chain with a degraded
:class:`ServingStatus` — not an exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GlobalPopularity
from repro.core import TTCAM, save_params
from repro.recommend import TemporalRecommender
from repro.robustness import (
    ServingUnavailableError,
    SnapshotCorruptError,
    truncate_file,
)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def fitted(tiny_cuboid):
    cuboid, _ = tiny_cuboid
    model = TTCAM(num_user_topics=3, num_time_topics=3, max_iter=15, seed=7)
    return model.fit(cuboid), cuboid


@pytest.fixture
def snapshot(fitted, tmp_path):
    model, _ = fitted
    return save_params(model.params_, tmp_path / "model.npz")


@pytest.fixture
def popularity(fitted):
    _, cuboid = fitted
    return GlobalPopularity().fit(cuboid)


class TestHealthySnapshot:
    def test_primary_serves_with_clean_status(self, snapshot, popularity):
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[popularity]
        )
        result, status = recommender.recommend_with_status(user=0, interval=0, k=5)
        assert len(result.recommendations) == 5
        assert not status.degraded
        assert status.served_by == "Loaded-TTCAM"
        assert status.reason is None
        assert recommender.last_status is status


class TestTruncatedSnapshot:
    def test_degrades_to_fallback_not_exception(self, snapshot, popularity):
        truncate_file(snapshot, keep_fraction=0.4)
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[popularity]
        )
        result, status = recommender.recommend_with_status(user=0, interval=0, k=5)
        assert len(result.recommendations) == 5
        assert status.degraded
        assert status.served_by == "Popularity"
        assert "snapshot unusable" in status.reason

    def test_without_fallback_the_error_propagates(self, snapshot):
        truncate_file(snapshot, keep_fraction=0.4)
        with pytest.raises(SnapshotCorruptError):
            TemporalRecommender.from_snapshot(snapshot)

    def test_tampered_snapshot_fails_checksum_and_degrades(
        self, snapshot, popularity
    ):
        raw = bytearray(snapshot.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(raw))
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[popularity]
        )
        _, status = recommender.recommend_with_status(user=0, interval=0)
        assert status.degraded


class TestOutOfRangeQueries:
    def test_unknown_user_falls_back(self, snapshot, popularity):
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[popularity]
        )
        _, status = recommender.recommend_with_status(user=10_000, interval=0, k=3)
        assert status.degraded
        assert "unknown user" in status.reason
        assert status.attempted == ("Loaded-TTCAM",)

    def test_unknown_interval_falls_back(self, snapshot, popularity):
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[popularity]
        )
        _, status = recommender.recommend_with_status(user=0, interval=10_000, k=3)
        assert status.degraded
        assert "unknown interval" in status.reason

    def test_unknown_user_without_fallback_is_unavailable(self, snapshot):
        recommender = TemporalRecommender.from_snapshot(snapshot)
        with pytest.raises(ServingUnavailableError, match="unknown user"):
            recommender.recommend(user=10_000, interval=0)


class TestFallbackChain:
    class _Broken:
        """A fallback that always fails, to exercise chain traversal."""

        name = "Broken"

        def score_items(self, user, interval):
            raise RuntimeError("down for maintenance")

    def test_chain_skips_broken_links(self, snapshot, popularity):
        truncate_file(snapshot, keep_fraction=0.4)
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[self._Broken(), popularity]
        )
        _, status = recommender.recommend_with_status(user=0, interval=0)
        assert status.degraded
        assert status.served_by == "Popularity"
        assert "Broken" in status.attempted

    def test_everything_down_raises_unavailable(self, snapshot):
        truncate_file(snapshot, keep_fraction=0.4)
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[self._Broken()]
        )
        with pytest.raises(ServingUnavailableError):
            recommender.recommend(user=0, interval=0)

    def test_no_model_and_no_fallback_is_rejected_upfront(self):
        with pytest.raises(ValueError, match="fallback"):
            TemporalRecommender(None)

    def test_fallback_scores_are_ranked(self, fitted, popularity):
        model, _ = fitted
        recommender = TemporalRecommender(model, fallbacks=[popularity])
        result, status = recommender.recommend_with_status(
            user=10_000, interval=0, k=5
        )
        scores = [rec.score for rec in result.recommendations]
        assert scores == sorted(scores, reverse=True)
        expected = np.sort(popularity.score_items(10_000, 0))[::-1][:5]
        np.testing.assert_allclose(scores, expected)

    def test_degraded_precompute_is_a_noop(self, snapshot, popularity):
        truncate_file(snapshot, keep_fraction=0.4)
        recommender = TemporalRecommender.from_snapshot(
            snapshot, fallbacks=[popularity]
        )
        assert recommender.precompute() == 0
