"""HealthMonitor invariants and seeded re-jitter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness import HealthMonitor, HealthViolation, rejitter_arrays


@pytest.fixture
def healthy_state():
    rng = np.random.default_rng(1)
    theta = rng.random((5, 3))
    theta /= theta.sum(axis=1, keepdims=True)
    phi = rng.random((3, 7))
    phi /= phi.sum(axis=1, keepdims=True)
    lam = rng.random(5)
    return {"theta": theta, "phi": phi, "lambda_u": lam}


@pytest.fixture
def monitor():
    return HealthMonitor(
        stochastic=("theta", "phi"),
        unit_interval=("lambda_u",),
        no_collapse=("theta",),
    )


class TestViolations:
    def test_healthy_state_passes(self, monitor, healthy_state):
        assert monitor.violations(healthy_state, -10.0, -11.0) == []
        monitor.check(healthy_state, -10.0, -11.0)  # should not raise

    def test_nan_is_reported(self, monitor, healthy_state):
        healthy_state["theta"][0, 0] = np.nan
        problems = monitor.violations(healthy_state)
        assert any("non-finite" in p for p in problems)

    def test_non_stochastic_rows(self, monitor, healthy_state):
        healthy_state["phi"][1] *= 2.0
        problems = monitor.violations(healthy_state)
        assert any("not stochastic" in p for p in problems)

    def test_unit_interval_breach(self, monitor, healthy_state):
        healthy_state["lambda_u"][2] = 1.5
        problems = monitor.violations(healthy_state)
        assert any("unit interval" in p for p in problems)

    def test_collapsed_topic_column(self, monitor, healthy_state):
        theta = healthy_state["theta"]
        theta[:, 0] = 0.0
        theta /= theta.sum(axis=1, keepdims=True)
        problems = monitor.violations(healthy_state)
        assert any("collapsed" in p for p in problems)

    def test_log_likelihood_decrease(self, monitor, healthy_state):
        problems = monitor.violations(healthy_state, -12.0, previous=-10.0)
        assert any("decreased" in p for p in problems)

    def test_ll_slack_tolerates_float_noise(self, monitor, healthy_state):
        assert monitor.violations(healthy_state, -10.0 - 1e-9, previous=-10.0) == []

    def test_non_finite_log_likelihood(self, monitor, healthy_state):
        problems = monitor.violations(healthy_state, float("nan"))
        assert any("non-finite" in p for p in problems)

    def test_check_raises_with_all_violations(self, monitor, healthy_state):
        healthy_state["theta"][0, 0] = np.inf
        healthy_state["lambda_u"][0] = -1.0
        with pytest.raises(HealthViolation) as excinfo:
            monitor.check(healthy_state)
        assert len(excinfo.value.violations) >= 2


class TestRejitter:
    def test_preserves_invariants(self, monitor, healthy_state):
        jittered = rejitter_arrays(
            healthy_state, ("theta", "phi"), ("lambda_u",), seed=3
        )
        assert monitor.violations(jittered) == []

    def test_actually_perturbs(self, healthy_state):
        jittered = rejitter_arrays(
            healthy_state, ("theta", "phi"), ("lambda_u",), seed=3
        )
        assert not np.array_equal(jittered["theta"], healthy_state["theta"])

    def test_seeded_and_deterministic(self, healthy_state):
        first = rejitter_arrays(healthy_state, ("theta",), (), seed=9)
        second = rejitter_arrays(healthy_state, ("theta",), (), seed=9)
        other = rejitter_arrays(healthy_state, ("theta",), (), seed=10)
        np.testing.assert_array_equal(first["theta"], second["theta"])
        assert not np.array_equal(first["theta"], other["theta"])
