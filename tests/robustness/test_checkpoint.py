"""CheckpointManager: atomic writes, checksums, pruning, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness import (
    CheckpointError,
    CheckpointManager,
    digest_arrays,
)


@pytest.fixture
def arrays():
    rng = np.random.default_rng(0)
    return {
        "theta": rng.random((4, 3)),
        "phi": rng.random((3, 5)),
    }


class TestDigest:
    def test_deterministic_and_order_independent(self, arrays):
        forward = digest_arrays(arrays)
        backward = digest_arrays(dict(reversed(list(arrays.items()))))
        assert forward == backward
        assert len(forward) == 64  # hex SHA-256

    def test_sensitive_to_content_name_and_shape(self, arrays):
        base = digest_arrays(arrays)
        bumped = {**arrays, "theta": arrays["theta"] + 1e-12}
        renamed = {"theta2": arrays["theta"], "phi": arrays["phi"]}
        reshaped = {**arrays, "phi": arrays["phi"].reshape(5, 3)}
        assert base != digest_arrays(bumped)
        assert base != digest_arrays(renamed)
        assert base != digest_arrays(reshaped)


class TestSaveLoad:
    def test_roundtrip_is_bit_identical(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, every=2)
        path = manager.save(arrays, iteration=4, log_likelihood=[-10.0, -8.5])
        restored = manager.load(path)
        assert restored.iteration == 4
        assert restored.log_likelihood == [-10.0, -8.5]
        for name, value in arrays.items():
            np.testing.assert_array_equal(restored.arrays[name], value)

    def test_no_temp_files_left_behind(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path)
        manager.save(arrays, iteration=5, log_likelihood=[-1.0])
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".npz")]
        assert leftovers == []

    def test_should_save_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=3)
        assert [i for i in range(10) if manager.should_save(i)] == [3, 6, 9]

    def test_corrupt_checkpoint_is_rejected(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path)
        path = manager.save(arrays, iteration=2, log_likelihood=[-1.0])
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            manager.load(path)

    def test_truncated_checkpoint_is_rejected(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path)
        path = manager.save(arrays, iteration=2, log_likelihood=[-1.0])
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            manager.load(path)


class TestLatestAndPrune:
    def test_prune_keeps_newest(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, every=1, keep=2)
        for iteration in (1, 2, 3, 4):
            manager.save(arrays, iteration=iteration, log_likelihood=[-1.0])
        kept = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert len(kept) == 2
        assert kept == ["em-000003.ckpt.npz", "em-000004.ckpt.npz"]

    def test_latest_returns_newest(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, keep=5)
        manager.save(arrays, iteration=1, log_likelihood=[-2.0])
        manager.save(arrays, iteration=7, log_likelihood=[-2.0, -1.0])
        latest = manager.latest()
        assert latest is not None
        assert latest.iteration == 7

    def test_latest_skips_corrupt_with_warning(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, keep=5)
        manager.save(arrays, iteration=1, log_likelihood=[-2.0])
        newest = manager.save(arrays, iteration=2, log_likelihood=[-2.0, -1.5])
        newest.write_bytes(b"garbage")
        with pytest.warns(UserWarning, match="skipping"):
            latest = manager.latest()
        assert latest is not None
        assert latest.iteration == 1

    def test_latest_on_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_meta_roundtrips(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path)
        manager.meta = {"model": "ttcam", "k1": 3}
        path = manager.save(arrays, iteration=2, log_likelihood=[-1.0])
        assert manager.load(path).meta == {"model": "ttcam", "k1": 3}
