"""Tests for the ``tcam`` command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ratings.csv"
    code = main(
        [
            "generate",
            "--profile",
            "digg",
            "--scale",
            "0.2",
            "--output",
            str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def snapshot(dataset_csv, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main(
        [
            "fit",
            "--input",
            str(dataset_csv),
            "--model",
            "ttcam",
            "--k1",
            "6",
            "--k2",
            "6",
            "--iters",
            "20",
            "--output",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, dataset_csv):
        header = dataset_csv.read_text().splitlines()[0]
        assert header == "user,interval,item,score"

    def test_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--profile", "netflix", "--output", str(tmp_path / "x.csv")])


class TestInfo:
    def test_prints_statistics(self, dataset_csv, capsys):
        assert main(["info", "--input", str(dataset_csv)]) == 0
        out = capsys.readouterr().out
        assert "users:" in out
        assert "density:" in out


class TestFit:
    def test_snapshot_created(self, snapshot):
        assert snapshot.exists()

    def test_reports_lambda(self, dataset_csv, tmp_path, capsys):
        main(
            [
                "fit",
                "--input",
                str(dataset_csv),
                "--model",
                "itcam",
                "--k1",
                "4",
                "--iters",
                "10",
                "--output",
                str(tmp_path / "it.npz"),
            ]
        )
        out = capsys.readouterr().out
        assert "λ̄" in out
        assert "snapshot written" in out

    def test_baselines_cannot_snapshot(self, dataset_csv, tmp_path):
        code = main(
            [
                "fit",
                "--input",
                str(dataset_csv),
                "--model",
                "ut",
                "--output",
                str(tmp_path / "ut.npz"),
            ]
        )
        assert code == 2


class TestRecommend:
    def test_top_k_printed(self, snapshot, capsys):
        code = main(
            [
                "recommend",
                "--model",
                str(snapshot),
                "--user",
                "0",
                "--interval",
                "3",
                "-k",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("item") >= 5
        assert "fully scored" in out

    def test_out_of_range_user(self, snapshot, capsys):
        code = main(
            [
                "recommend",
                "--model",
                str(snapshot),
                "--user",
                "999999",
                "--interval",
                "0",
            ]
        )
        assert code == 2

    def test_out_of_range_interval(self, snapshot):
        code = main(
            [
                "recommend",
                "--model",
                str(snapshot),
                "--user",
                "0",
                "--interval",
                "999999",
            ]
        )
        assert code == 2

    def test_engine_choices(self, snapshot, capsys):
        for engine in ("bf", "batched-ta"):
            code = main(
                [
                    "recommend",
                    "--model",
                    str(snapshot),
                    "--user",
                    "1",
                    "--interval",
                    "2",
                    "--engine",
                    engine,
                ]
            )
            assert code == 0

    def test_missing_query_and_batch_file_rejected(self, snapshot, capsys):
        code = main(["recommend", "--model", str(snapshot)])
        assert code == 2
        assert "--batch-file" in capsys.readouterr().err

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_batch_file_served(self, snapshot, tmp_path, capsys, dtype):
        batch = tmp_path / "queries.csv"
        batch.write_text("# user,interval\n0,3\n1,3\n2,0\n0,3\n")
        code = main(
            [
                "recommend",
                "--model",
                str(snapshot),
                "--batch-file",
                str(batch),
                "-k",
                "5",
                "--batch-size",
                "2",
                "--serve-dtype",
                dtype,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("(")]
        assert len(lines) == 4
        assert lines[0] == lines[3]  # duplicate queries → identical rows
        assert "4 queries (0 degraded)" in out
        assert "cache hit-rate" in out

    def test_batch_file_stdin(self, snapshot, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("# user,interval\n0,3\n1,0\n"))
        code = main(
            ["recommend", "--model", str(snapshot), "--batch-file", "-", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("(")]
        assert len(lines) == 2
        assert "2 queries (0 degraded)" in out

    def test_batch_file_stdin_errors_name_stdin(self, snapshot, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("bogus line\n"))
        code = main(["recommend", "--model", str(snapshot), "--batch-file", "-"])
        assert code == 2
        assert "<stdin>:1:" in capsys.readouterr().err

    def test_batch_file_empty_rejected(self, snapshot, tmp_path, capsys):
        batch = tmp_path / "queries.csv"
        batch.write_text("# only a comment\n")
        code = main(
            ["recommend", "--model", str(snapshot), "--batch-file", str(batch)]
        )
        assert code == 2


class TestRecommendMmapQuantized:
    @pytest.fixture(scope="class")
    def mmap_snapshot(self, dataset_csv, tmp_path_factory, request):
        path = tmp_path_factory.mktemp("cli-mmap") / "model.npz"
        code = main(
            [
                "fit",
                "--input", str(dataset_csv),
                "--model", "ttcam",
                "--k1", "6",
                "--k2", "6",
                "--iters", "15",
                "--output", str(path),
                "--mmap-layout",
            ]
        )
        assert code == 0
        return path

    def test_fit_writes_sidecar(self, mmap_snapshot, capsys):
        sidecar = mmap_snapshot.parent / (mmap_snapshot.name + ".arrays")
        assert (sidecar / "manifest.json").exists()

    @pytest.mark.parametrize("dtype", ["float16", "int8"])
    def test_quantized_batch_rows_identical_to_float64(
        self, mmap_snapshot, tmp_path, capsys, dtype
    ):
        batch = tmp_path / "queries.csv"
        batch.write_text("0,3\n1,3\n2,0\n0,3\n")
        outputs = {}
        for mode in ("float64", dtype):
            code = main(
                [
                    "recommend",
                    "--model", str(mmap_snapshot),
                    "--mmap",
                    "--batch-file", str(batch),
                    "-k", "5",
                    "--select-dtype", mode,
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            outputs[mode] = [l for l in out.splitlines() if l.startswith("(")]
            assert f"dtype {mode}" in out
        assert outputs[dtype] == outputs["float64"]

    def test_malformed_batch_line_refused_clearly(self, mmap_snapshot, tmp_path, capsys):
        batch = tmp_path / "queries.csv"
        batch.write_text("user,interval\n0,0\n")
        code = main(
            [
                "recommend",
                "--model", str(mmap_snapshot),
                "--batch-file", str(batch),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "queries.csv:1" in err
        assert "'user,interval'" in err
        assert "Traceback" not in err

    def test_quantized_single_query_refused_clearly(self, mmap_snapshot, capsys):
        code = main(
            [
                "recommend",
                "--model", str(mmap_snapshot),
                "--user", "0",
                "--interval", "0",
                "--select-dtype", "int8",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--batch-file" in err
        assert "Traceback" not in err

    def test_unknown_dtype_refused_by_parser(self, mmap_snapshot, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--model", str(mmap_snapshot),
                    "--user", "0",
                    "--interval", "0",
                    "--select-dtype", "int4",
                ]
            )
        assert "invalid choice" in capsys.readouterr().err

    def test_mmap_single_query_serves(self, mmap_snapshot, capsys):
        code = main(
            [
                "recommend",
                "--model", str(mmap_snapshot),
                "--mmap",
                "--user", "0",
                "--interval", "3",
                "-k", "5",
            ]
        )
        assert code == 0
        assert "fully scored" in capsys.readouterr().out

    def test_mmap_without_sidecar_warns_and_degrades(self, snapshot, capsys):
        with pytest.warns(RuntimeWarning, match="falling back"):
            code = main(
                [
                    "recommend",
                    "--model", str(snapshot),  # fitted without --mmap-layout
                    "--mmap",
                    "--user", "0",
                    "--interval", "3",
                ]
            )
        assert code == 0


class TestEvaluate:
    def test_metrics_table(self, dataset_csv, capsys):
        code = main(
            [
                "evaluate",
                "--input",
                str(dataset_csv),
                "--model",
                "ttcam",
                "--k1",
                "6",
                "--k2",
                "6",
                "--iters",
                "15",
                "--ks",
                "1,5",
                "--max-queries",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "ndcg" in out

    def test_baseline_models_evaluable(self, dataset_csv, capsys):
        code = main(
            [
                "evaluate",
                "--input",
                str(dataset_csv),
                "--model",
                "tt",
                "--iters",
                "10",
                "--ks",
                "5",
                "--max-queries",
                "40",
            ]
        )
        assert code == 0


class TestAnalyze:
    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("TCAM010", "TCAM011", "TCAM012", "TCAM013"):
            assert code in out

    def test_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "from concurrent.futures import as_completed\n"
            "\n"
            "def gather(pending):\n"
            "    return [f.result() for f in as_completed(pending)]\n",
            encoding="utf-8",
        )
        assert main(["analyze", str(dirty)]) == 1
        assert "TCAM013" in capsys.readouterr().out

        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["analyze", str(clean)]) == 0


class TestFitSanitize:
    def test_fit_under_sanitizer(self, dataset_csv, tmp_path, capsys):
        path = tmp_path / "model.npz"
        code = main(
            [
                "fit",
                "--input",
                str(dataset_csv),
                "--model",
                "ttcam",
                "--k1",
                "4",
                "--k2",
                "4",
                "--iters",
                "3",
                "--sanitize",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()


class TestStream:
    @pytest.fixture()
    def events_csv(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text(
            "user,interval,item,score\n"
            "0,0,1,1.0\n"
            "1,0,2,2.0\n"
            "2,1,3,1.0\n"
            "0,2,4,\n"  # blank score defaults to implicit 1.0
        )
        return path

    def test_append_run_status_loop(self, snapshot, events_csv, tmp_path, capsys):
        log_dir = tmp_path / "wal"
        ckpt_dir = tmp_path / "ckpt"
        folded = tmp_path / "folded.npz"
        assert main(["stream", "append", "--log", str(log_dir), "--input", str(events_csv)]) == 0
        assert "appended 4 events" in capsys.readouterr().out
        assert (
            main(
                [
                    "stream", "run",
                    "--log", str(log_dir),
                    "--snapshot", str(snapshot),
                    "--checkpoints", str(ckpt_dir),
                    "--batch-events", "3",
                    "--output", str(folded),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "applied 4 events in 2 micro-batches" in out
        assert folded.exists()
        assert main(
            ["stream", "status", "--log", str(log_dir), "--checkpoints", str(ckpt_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "4 durable events" in out
        assert "offset 4" in out

    def test_append_rejects_missing_columns(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("who,when\n1,2\n")
        with pytest.raises(SystemExit, match="missing columns"):
            main(["stream", "append", "--log", str(tmp_path / "wal"), "--input", str(bad)])

    def test_status_without_checkpoints_reports_log_only(self, tmp_path, capsys):
        log_dir = tmp_path / "wal"
        # status on a brand-new (empty) log directory
        assert main(["stream", "status", "--log", str(log_dir)]) == 0
        assert "0 durable events" in capsys.readouterr().out

    def test_run_rejects_itcam_snapshot(self, dataset_csv, tmp_path):
        snap = tmp_path / "itcam.npz"
        assert (
            main(
                [
                    "fit",
                    "--input", str(dataset_csv),
                    "--model", "itcam",
                    "--k1", "4",
                    "--iters", "2",
                    "--output", str(snap),
                ]
            )
            == 0
        )
        with pytest.raises(SystemExit, match="TTCAM snapshot"):
            main(
                [
                    "stream", "run",
                    "--log", str(tmp_path / "wal"),
                    "--snapshot", str(snap),
                    "--checkpoints", str(tmp_path / "ckpt"),
                ]
            )
