"""Tests for rating data I/O."""

import numpy as np
import pytest

from repro.data.io import (
    cuboid_to_ratings,
    load_cuboid_csv,
    read_csv,
    read_jsonl,
    save_cuboid_csv,
    write_csv,
    write_jsonl,
)
from repro.data.cuboid import RatingCuboid
from repro.data.events import Rating


class TestCSV:
    def test_round_trip(self, tmp_path, simple_ratings):
        path = tmp_path / "ratings.csv"
        count = write_csv(simple_ratings, path)
        assert count == len(simple_ratings)
        loaded = list(read_csv(path))
        assert loaded == simple_ratings

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user,item\nalice,pizza\n")
        with pytest.raises(ValueError, match="missing required columns"):
            list(read_csv(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            list(read_csv(path))


class TestJSONL:
    def test_round_trip(self, tmp_path, simple_ratings):
        path = tmp_path / "ratings.jsonl"
        count = write_jsonl(simple_ratings, path)
        assert count == len(simple_ratings)
        loaded = list(read_jsonl(path))
        assert loaded == simple_ratings

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text(
            '{"user": "a", "interval": 0, "item": "x", "score": 1.0}\n'
            "\n"
            '{"user": "b", "interval": 1, "item": "y", "score": 2.0}\n'
        )
        assert len(list(read_jsonl(path))) == 2

    def test_default_score(self, tmp_path):
        path = tmp_path / "noscore.jsonl"
        path.write_text('{"user": "a", "interval": 0, "item": "x"}\n')
        [rating] = list(read_jsonl(path))
        assert rating.score == 1.0

    def test_invalid_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"user": "a", "interval": 0, "item": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            list(read_jsonl(path))


class TestCuboidRoundTrip:
    def test_save_load_preserves_tensor(self, tmp_path, simple_ratings):
        original = RatingCuboid.from_ratings(simple_ratings)
        path = tmp_path / "cuboid.csv"
        save_cuboid_csv(original, path)
        loaded = load_cuboid_csv(path)
        assert loaded.shape == original.shape
        np.testing.assert_allclose(
            loaded.to_dense(), original.to_dense()
        )

    def test_cuboid_to_ratings_uses_labels(self, simple_ratings):
        cuboid = RatingCuboid.from_ratings(simple_ratings)
        back = list(cuboid_to_ratings(cuboid))
        users = {r.user for r in back}
        assert users == {"alice", "bob", "carol"}

    def test_cuboid_to_ratings_without_indexers(self):
        cuboid = RatingCuboid.from_arrays([0, 1], [0, 0], [1, 0])
        back = list(cuboid_to_ratings(cuboid))
        assert back[0].user == "0"
        assert back[0].item == "1"

    def test_synthetic_round_trip(self, tmp_path, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        path = tmp_path / "tiny.csv"
        save_cuboid_csv(cuboid, path)
        loaded = load_cuboid_csv(path)
        assert loaded.nnz == cuboid.nnz
        assert loaded.total_score == pytest.approx(cuboid.total_score)
