"""Tests for rating events and user documents."""

import pytest

from repro.data.events import (
    Rating,
    UserDocument,
    dataset_statistics,
    group_by_interval,
    group_by_user,
)


class TestRating:
    def test_fields_round_trip(self):
        rating = Rating("u1", 3, "item9", 2.5)
        assert rating.as_tuple() == ("u1", 3, "item9", 2.5)

    def test_default_score_is_one(self):
        assert Rating("u", 0, "v").score == 1.0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            Rating("u", -1, "v")

    def test_zero_score_rejected(self):
        with pytest.raises(ValueError, match="score"):
            Rating("u", 0, "v", 0.0)

    def test_negative_score_rejected(self):
        with pytest.raises(ValueError, match="score"):
            Rating("u", 0, "v", -1.0)

    def test_is_hashable_and_frozen(self):
        rating = Rating("u", 0, "v")
        assert {rating: 1}[Rating("u", 0, "v")] == 1
        with pytest.raises(AttributeError):
            rating.score = 2.0


class TestUserDocument:
    def test_add_and_len(self):
        doc = UserDocument("u")
        doc.add("a", 0)
        doc.add("b", 1, 2.0)
        assert len(doc) == 2

    def test_items_order_preserved(self):
        doc = UserDocument("u")
        doc.add("b", 1)
        doc.add("a", 0)
        assert doc.items() == ["b", "a"]
        assert doc.intervals() == [1, 0]

    def test_items_in_interval(self):
        doc = UserDocument("u")
        doc.add("a", 0)
        doc.add("b", 1)
        doc.add("c", 1)
        assert doc.items_in_interval(1) == ["b", "c"]
        assert doc.items_in_interval(5) == []

    def test_iteration_yields_entries(self):
        doc = UserDocument("u")
        doc.add("a", 0, 1.5)
        assert list(doc) == [("a", 0, 1.5)]


class TestGrouping:
    def test_group_by_user(self, simple_ratings):
        docs = group_by_user(simple_ratings)
        assert set(docs) == {"alice", "bob", "carol"}
        assert docs["alice"].items() == ["pizza", "sushi", "pizza"]
        assert len(docs["bob"]) == 2

    def test_group_by_interval(self, simple_ratings):
        buckets = group_by_interval(simple_ratings)
        assert set(buckets) == {0, 1}
        assert len(buckets[0]) == 3
        assert len(buckets[1]) == 3

    def test_group_empty_stream(self):
        assert group_by_user([]) == {}
        assert group_by_interval([]) == {}


class TestDatasetStatistics:
    def test_counts(self, simple_ratings):
        stats = dataset_statistics(simple_ratings)
        assert stats["users"] == 3
        assert stats["items"] == 3
        assert stats["ratings"] == 6
        assert stats["intervals"] == 2

    def test_empty(self):
        stats = dataset_statistics([])
        assert stats == {"users": 0, "items": 0, "ratings": 0, "intervals": 0}
