"""Tests for the four dataset profiles (Table 2 substitutes)."""

import numpy as np
import pytest

from repro.data import generate, profile
from repro.data.profiles import PROFILES


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profile_generates(self, name):
        cuboid, truth = generate(profile(name, scale=0.2))
        assert cuboid.nnz > 0
        assert truth.config.name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown profile"):
            profile("netflix")

    def test_scale_grows_users(self):
        small = profile("digg", scale=0.2)
        large = profile("digg", scale=0.5)
        assert large.num_users > small.num_users
        assert large.num_items > small.num_items

    def test_seed_override(self):
        default = profile("digg", scale=0.2)
        other = profile("digg", scale=0.2, seed=99)
        assert default.seed != other.seed

    def test_table2_relative_shapes(self):
        """Relative dataset characteristics follow Table 2 in spirit."""
        digg = profile("digg")
        movielens = profile("movielens")
        douban = profile("douban")
        delicious = profile("delicious")
        # Douban's catalogue is the largest movie catalogue.
        assert douban.num_items > movielens.num_items
        # Delicious has the largest vocabulary of all.
        assert delicious.num_items >= douban.num_items
        # Digg and MovieLens are user-heavy.
        assert digg.num_users > digg.num_items
        assert movielens.num_users > movielens.num_items

    def test_time_sensitivity_contrast(self):
        """News-like platforms are context-driven, movie-like interest-driven."""
        digg = profile("digg")
        movielens = profile("movielens")
        digg_mean_lambda = digg.lambda_alpha / (digg.lambda_alpha + digg.lambda_beta)
        ml_mean_lambda = movielens.lambda_alpha / (
            movielens.lambda_alpha + movielens.lambda_beta
        )
        assert digg_mean_lambda < 0.5 < ml_mean_lambda
        # News items die quickly; movies do not.
        assert digg.item_lifecycle < 5
        assert not np.isfinite(movielens.item_lifecycle)

    def test_delicious_ships_named_events(self):
        config = profile("delicious")
        names = {event.name for event in config.events}
        assert "michaeljackson" in names
        assert "swineflu" in names

    def test_douban_ships_release_cohorts(self):
        config = profile("douban")
        names = [event.name for event in config.events]
        assert "y2007" in names and "y2010" in names

    def test_movie_profiles_use_explicit_scores(self):
        assert profile("movielens").explicit_scores
        assert profile("douban").explicit_scores
        assert not profile("digg").explicit_scores

    def test_one_rating_per_story_on_digg(self):
        cuboid, _ = generate(profile("digg", scale=0.2))
        pairs = cuboid.users * cuboid.num_items + cuboid.items
        assert len(np.unique(pairs)) == len(pairs)

    def test_delicious_engagement_counts(self):
        cuboid, _ = generate(profile("delicious", scale=0.2))
        # Tag reuse inflates some scores beyond 1.
        assert cuboid.scores.max() > 1.0
