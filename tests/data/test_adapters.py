"""Tests for the real-data adapters."""

import numpy as np
import pytest

from repro.data.adapters import (
    filter_min_activity,
    from_events,
    load_movielens_dat,
    load_timestamped_csv,
)

DAY = 86_400.0


class TestFromEvents:
    def test_discretises_timestamps(self):
        events = [
            ("alice", "matrix", 5.0, 0.0),
            ("alice", "inception", 4.0, 2.5 * DAY),
            ("bob", "matrix", 3.0, 7.0 * DAY),
        ]
        cuboid = from_events(events, interval_days=3.0)
        assert cuboid.num_intervals == 3  # days 0-3, 3-6, 6-9
        assert cuboid.num_users == 2
        assert cuboid.num_items == 2
        # alice's two ratings land in interval 0; bob's in interval 2.
        assert sorted(cuboid.intervals.tolist()) == [0, 0, 2]

    def test_origin_is_earliest_timestamp(self):
        events = [("u", "a", 1.0, 100 * DAY), ("u", "b", 1.0, 101 * DAY)]
        cuboid = from_events(events, interval_days=1.0)
        assert cuboid.intervals.min() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_events([])


class TestMovieLensDat:
    def test_parses_double_colon_format(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text(
            "1::10::5::0\n"
            "1::20::3::86400\n"
            "2::10::4::172800\n"
        )
        cuboid = load_movielens_dat(path, interval_days=1.0)
        assert cuboid.num_users == 2
        assert cuboid.num_items == 2
        assert cuboid.nnz == 3
        assert cuboid.scores.sum() == 12.0

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::5::0\nbroken line\n")
        with pytest.raises(ValueError, match=":2"):
            load_movielens_dat(path)

    def test_max_rows_caps(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("\n".join(f"{u}::1::3::0" for u in range(10)))
        cuboid = load_movielens_dat(path, max_rows=4)
        assert cuboid.num_users == 4


class TestTimestampedCSV:
    def test_loads_by_header_names(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "when,who,what,stars\n"
            "0,alice,matrix,5\n"
            f"{3 * DAY},bob,inception,4\n"
        )
        cuboid = load_timestamped_csv(
            path,
            interval_days=3.0,
            user_column="who",
            item_column="what",
            rating_column="stars",
            timestamp_column="when",
        )
        assert cuboid.nnz == 2
        assert cuboid.num_intervals == 2

    def test_implicit_feedback_mode(self, tmp_path):
        path = tmp_path / "clicks.csv"
        path.write_text("user,item,timestamp\na,x,0\na,x,10\n")
        cuboid = load_timestamped_csv(path, rating_column=None, interval_days=1.0)
        # Two implicit clicks on the same (u, t, v) coalesce to score 2.
        assert cuboid.nnz == 1
        assert cuboid.scores[0] == 2.0

    def test_missing_columns_reported(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user,item\na,x\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_timestamped_csv(path)


class TestFilterMinActivity:
    def test_drops_inactive(self):
        events = [("heavy", f"item{i}", 1.0, i * DAY) for i in range(5)]
        events += [("light", "item0", 1.0, 0.0)]
        cuboid = from_events(events, interval_days=1.0)
        filtered = filter_min_activity(cuboid, min_user_ratings=2)
        kept_users = set(filtered.users.tolist())
        assert cuboid.user_index.id_of("light") not in kept_users

    def test_item_threshold(self):
        events = [("a", "popular", 1.0, 0.0), ("b", "popular", 1.0, 0.0), ("a", "rare", 1.0, 0.0)]
        cuboid = from_events(events, interval_days=1.0)
        filtered = filter_min_activity(cuboid, min_item_users=2)
        assert cuboid.item_index.id_of("rare") not in set(filtered.items.tolist())

    def test_validation(self):
        cuboid = from_events([("a", "x", 1.0, 0.0)], interval_days=1.0)
        with pytest.raises(ValueError):
            filter_min_activity(cuboid, min_user_ratings=0)
