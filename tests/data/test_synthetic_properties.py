"""Property-based tests for the synthetic generator's invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.data.synthetic import generate
from tests.conftest import tiny_config


@st.composite
def generator_config(draw):
    from repro.data.synthetic import auto_events

    num_intervals = draw(st.integers(6, 16))
    return tiny_config(
        events=auto_events(3, num_intervals, rng_seed=5, width=1.0, num_items=5),
        num_users=draw(st.integers(30, 120)),
        num_items=draw(st.integers(40, 100)),
        num_intervals=num_intervals,
        lambda_alpha=draw(st.floats(0.5, 8.0)),
        lambda_beta=draw(st.floats(0.5, 8.0)),
        noise_fraction=draw(st.floats(0.0, 0.4)),
        item_lifecycle=draw(st.sampled_from([2.0, 5.0, float("inf")])),
        distinct_items=draw(st.booleans()),
        explicit_scores=draw(st.booleans()),
        seed=draw(st.integers(0, 10_000)),
    )


class TestGeneratorInvariants:
    @settings(max_examples=25, deadline=None)
    @given(generator_config())
    def test_cuboid_well_formed(self, config):
        cuboid, truth = generate(config)
        assert cuboid.shape == (
            config.num_users,
            config.num_intervals,
            config.num_items,
        )
        assert cuboid.nnz > 0
        assert np.all(cuboid.scores > 0)
        # Events' peaks fall inside the timeline.
        for event in config.events:
            assert 0 <= event.peak < config.num_intervals

    @settings(max_examples=25, deadline=None)
    @given(generator_config())
    def test_ground_truth_distributions(self, config):
        _, truth = generate(config)
        np.testing.assert_allclose(truth.theta.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(truth.phi.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(truth.phi_events.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(truth.temporal_context.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(truth.availability.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(generator_config())
    def test_source_composition_tracks_config(self, config):
        """The noise share matches noise_fraction and the interest share
        among non-noise ratings tracks the λ prior mean (in expectation,
        with a generous tolerance for finite samples).

        Only meaningful without ``distinct_items``: deduplication drops
        topical ratings (concentrated on few items) far more often than
        noise (spread over the catalogue), biasing the realized shares.
        """
        assume(not config.distinct_items)
        _, truth = generate(config)
        source = truth.source
        noise_share = float(np.mean(source == 2))
        assert abs(noise_share - config.noise_fraction) < 0.12
        non_noise = source[source != 2]
        if non_noise.size > 200:
            interest_share = float(np.mean(non_noise == 1))
            lam_mean = config.lambda_alpha / (config.lambda_alpha + config.lambda_beta)
            assert abs(interest_share - lam_mean) < 0.2

    @settings(max_examples=25, deadline=None)
    @given(generator_config())
    def test_distinct_items_honoured(self, config):
        cuboid, _ = generate(config)
        if config.distinct_items:
            pairs = cuboid.users * cuboid.num_items + cuboid.items
            assert len(np.unique(pairs)) == len(pairs)

    @settings(max_examples=15, deadline=None)
    @given(generator_config())
    def test_determinism(self, config):
        c1, _ = generate(config)
        c2, _ = generate(config)
        np.testing.assert_array_equal(c1.items, c2.items)
        np.testing.assert_array_equal(c1.scores, c2.scores)
