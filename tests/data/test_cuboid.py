"""Tests for the sparse rating cuboid."""

import numpy as np
import pytest

from repro.data.cuboid import RatingCuboid
from repro.data.events import Rating
from repro.data.indexer import Indexer


class TestConstruction:
    def test_from_arrays_infers_dims(self):
        cub = RatingCuboid.from_arrays([0, 2], [1, 0], [3, 1])
        assert cub.shape == (3, 2, 4)
        assert cub.nnz == 2

    def test_from_arrays_default_scores(self):
        cub = RatingCuboid.from_arrays([0], [0], [0])
        assert cub.scores.tolist() == [1.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            RatingCuboid(
                users=np.array([0, 1]),
                intervals=np.array([0]),
                items=np.array([0]),
                scores=np.array([1.0]),
                num_users=2,
                num_intervals=1,
                num_items=1,
            )

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            RatingCuboid.from_arrays([0], [0], [5], num_items=3)

    def test_nonpositive_scores_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            RatingCuboid.from_arrays([0], [0], [0], scores=[0.0])

    def test_from_ratings_builds_indexers(self, simple_ratings):
        cub = RatingCuboid.from_ratings(simple_ratings)
        assert cub.num_users == 3
        assert cub.num_items == 3
        assert cub.user_index.id_of("alice") == 0
        assert cub.item_index.id_of("pizza") == 0

    def test_from_ratings_shared_indexer(self, simple_ratings):
        users = Indexer(["zoe", "alice"])
        cub = RatingCuboid.from_ratings(simple_ratings, user_index=users)
        # "zoe" pre-registered: alice keeps id 1, dims count zoe too.
        assert cub.user_index.id_of("alice") == 1
        assert cub.num_users == 4

    def test_from_ratings_num_intervals_override(self, simple_ratings):
        cub = RatingCuboid.from_ratings(simple_ratings, num_intervals=10)
        assert cub.num_intervals == 10
        with pytest.raises(ValueError, match="too small"):
            RatingCuboid.from_ratings(simple_ratings, num_intervals=1)


class TestCoalesce:
    def test_duplicates_merge_scores(self):
        cub = RatingCuboid.from_arrays(
            [0, 0, 0], [1, 1, 0], [2, 2, 2], scores=[1.0, 2.5, 1.0]
        )
        assert cub.nnz == 2
        assert cub.total_score == 4.5
        dense = cub.to_dense()
        assert dense[0, 1, 2] == 3.5
        assert dense[0, 0, 2] == 1.0

    def test_coalesce_idempotent(self, handmade_cuboid):
        again = handmade_cuboid.coalesce()
        assert again.nnz == handmade_cuboid.nnz
        np.testing.assert_array_equal(again.scores, handmade_cuboid.scores)

    def test_coalesce_sorts_lexicographically(self):
        cub = RatingCuboid.from_arrays([1, 0], [0, 1], [0, 0])
        assert cub.users.tolist() == [0, 1]

    def test_empty_cuboid(self):
        cub = RatingCuboid.from_arrays([], [], [], num_users=2, num_intervals=2, num_items=2)
        assert cub.nnz == 0
        assert cub.coalesce().nnz == 0
        assert cub.density() == 0.0


class TestTransforms:
    def test_with_scores_replaces(self, handmade_cuboid):
        doubled = handmade_cuboid.with_scores(handmade_cuboid.scores * 2)
        assert doubled.total_score == handmade_cuboid.total_score * 2
        # original untouched
        assert handmade_cuboid.scores.max() == 3.0

    def test_with_scores_shape_checked(self, handmade_cuboid):
        with pytest.raises(ValueError):
            handmade_cuboid.with_scores(np.ones(2))

    def test_select_partitions(self, handmade_cuboid):
        mask = handmade_cuboid.users == 0
        kept = handmade_cuboid.select(mask)
        dropped = handmade_cuboid.select(~mask)
        assert kept.nnz + dropped.nnz == handmade_cuboid.nnz
        assert kept.shape == handmade_cuboid.shape  # dims preserved

    def test_select_mask_length_checked(self, handmade_cuboid):
        with pytest.raises(ValueError):
            handmade_cuboid.select(np.array([True]))

    def test_coarsen_intervals_merges(self, handmade_cuboid):
        coarse = handmade_cuboid.coarsen_intervals(2)
        assert coarse.num_intervals == 1
        assert coarse.total_score == handmade_cuboid.total_score
        # (u0, t0, v0) and (u0, t1, v0) merge into one entry
        dense = coarse.to_dense()
        assert dense[0, 0, 0] == 2.0

    def test_coarsen_factor_one_is_identity(self, handmade_cuboid):
        same = handmade_cuboid.coarsen_intervals(1)
        assert same is handmade_cuboid

    def test_coarsen_invalid_factor(self, handmade_cuboid):
        with pytest.raises(ValueError):
            handmade_cuboid.coarsen_intervals(0)

    def test_to_dense_matches_coords(self, handmade_cuboid):
        dense = handmade_cuboid.to_dense()
        assert dense.shape == handmade_cuboid.shape
        assert dense.sum() == handmade_cuboid.total_score
        assert dense[1, 1, 2] == 3.0


class TestStatistics:
    def test_item_user_counts(self, handmade_cuboid):
        # item0: u0 only; item1: u0, u1; item2: u1, u2
        assert handmade_cuboid.item_user_counts().tolist() == [1, 2, 2]

    def test_item_interval_user_counts(self, handmade_cuboid):
        counts = handmade_cuboid.item_interval_user_counts()
        assert counts.shape == (2, 3)
        assert counts[0].tolist() == [1, 2, 0]
        assert counts[1].tolist() == [1, 0, 2]

    def test_interval_user_counts(self, handmade_cuboid):
        # t0: u0, u1; t1: u0, u1, u2
        assert handmade_cuboid.interval_user_counts().tolist() == [2, 3]

    def test_user_activity(self, handmade_cuboid):
        assert handmade_cuboid.user_activity().tolist() == [3, 2, 1]

    def test_item_popularity(self, handmade_cuboid):
        assert handmade_cuboid.item_popularity().tolist() == [2.0, 3.0, 4.0]

    def test_interval_item_matrix(self, handmade_cuboid):
        matrix = handmade_cuboid.interval_item_matrix()
        assert matrix.sum() == handmade_cuboid.total_score
        assert matrix[1, 2] == 4.0

    def test_user_item_pairs(self, handmade_cuboid):
        assert (0, 0) in handmade_cuboid.user_item_pairs()
        assert (2, 2) in handmade_cuboid.user_item_pairs()
        assert len(handmade_cuboid.user_item_pairs()) == 5

    def test_entry_lookups(self, handmade_cuboid):
        rows = handmade_cuboid.entries_of_user(0)
        assert len(rows) == 3
        rows_t = handmade_cuboid.entries_of_interval(1)
        assert len(rows_t) == 3
        items = handmade_cuboid.items_of_user_interval(0, 0)
        assert sorted(items.tolist()) == [0, 1]

    def test_counts_on_empty(self):
        cub = RatingCuboid.from_arrays([], [], [], num_users=2, num_intervals=3, num_items=4)
        assert cub.item_user_counts().tolist() == [0, 0, 0, 0]
        assert cub.interval_user_counts().tolist() == [0, 0, 0]
        assert cub.item_interval_user_counts().shape == (3, 4)
