"""Property-based tests for the splitting machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.cuboid import RatingCuboid
from repro.data.splits import cross_validation_splits, holdout_split


@st.composite
def random_cuboid(draw):
    n = draw(st.integers(2, 10))
    t = draw(st.integers(1, 6))
    v = draw(st.integers(2, 12))
    size = draw(st.integers(5, 80))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    return RatingCuboid.from_arrays(
        rng.integers(0, n, size),
        rng.integers(0, t, size),
        rng.integers(0, v, size),
        num_users=n,
        num_intervals=t,
        num_items=v,
    )


class TestHoldoutProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_cuboid(), st.integers(0, 1000))
    def test_partition_exact(self, cuboid, seed):
        split = holdout_split(cuboid, seed=seed)
        assert split.train.nnz + split.test.nnz == cuboid.nnz
        assert np.isclose(
            split.train.total_score + split.test.total_score, cuboid.total_score
        )

    @settings(max_examples=60, deadline=None)
    @given(random_cuboid(), st.integers(0, 1000))
    def test_stratification_bound(self, cuboid, seed):
        """No (u, t) group loses more than ceil(group/5) entries to test."""
        split = holdout_split(cuboid, test_fraction=0.2, seed=seed)

        def group_counts(part):
            keys = part.users * part.num_intervals + part.intervals
            return dict(zip(*np.unique(keys, return_counts=True)))

        full = group_counts(cuboid)
        test = group_counts(split.test)
        for key, test_count in test.items():
            total = full[key]
            assert test_count <= -(-total // 5)  # ceil(total / 5)

    @settings(max_examples=40, deadline=None)
    @given(random_cuboid())
    def test_dimensions_preserved(self, cuboid):
        split = holdout_split(cuboid, seed=0)
        assert split.train.shape == cuboid.shape
        assert split.test.shape == cuboid.shape


class TestCrossValidationProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_cuboid(), st.integers(2, 5), st.integers(0, 500))
    def test_folds_partition_and_are_disjoint(self, cuboid, folds, seed):
        splits = list(cross_validation_splits(cuboid, num_folds=folds, seed=seed))
        assert len(splits) == folds
        total = sum(split.test.nnz for split in splits)
        assert total == cuboid.nnz
        seen: set[tuple[int, int, int]] = set()
        for split in splits:
            entries = set(
                zip(
                    split.test.users.tolist(),
                    split.test.intervals.tolist(),
                    split.test.items.tolist(),
                )
            )
            assert not (entries & seen)
            seen |= entries

    @settings(max_examples=40, deadline=None)
    @given(random_cuboid(), st.integers(0, 500))
    def test_deterministic(self, cuboid, seed):
        a = list(cross_validation_splits(cuboid, num_folds=3, seed=seed))
        b = list(cross_validation_splits(cuboid, num_folds=3, seed=seed))
        for split_a, split_b in zip(a, b):
            np.testing.assert_array_equal(split_a.test.items, split_b.test.items)
