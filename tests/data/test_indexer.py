"""Tests for the label ↔ id Indexer."""

import numpy as np
import pytest

from repro.data.indexer import Indexer


class TestIndexer:
    def test_first_seen_order(self):
        index = Indexer(["b", "a", "c"])
        assert index.id_of("b") == 0
        assert index.id_of("a") == 1
        assert index.id_of("c") == 2

    def test_add_is_idempotent(self):
        index = Indexer()
        first = index.add("x")
        second = index.add("x")
        assert first == second == 0
        assert len(index) == 1

    def test_label_of_round_trip(self):
        index = Indexer(["a", "b"])
        assert index.label_of(index.id_of("b")) == "b"

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Indexer().id_of("missing")

    def test_negative_index_raises(self):
        with pytest.raises(IndexError):
            Indexer(["a"]).label_of(-1)

    def test_out_of_range_index_raises(self):
        with pytest.raises(IndexError):
            Indexer(["a"]).label_of(5)

    def test_get_with_default(self):
        index = Indexer(["a"])
        assert index.get("a") == 0
        assert index.get("missing") is None
        assert index.get("missing", -1) == -1

    def test_encode_decode(self):
        index = Indexer(["a", "b", "c"])
        encoded = index.encode(["c", "a", "c"])
        assert encoded.dtype == np.int64
        assert encoded.tolist() == [2, 0, 2]
        assert index.decode(encoded) == ["c", "a", "c"]

    def test_encode_unknown_raises(self):
        with pytest.raises(KeyError):
            Indexer(["a"]).encode(["a", "zzz"])

    def test_contains_iter_len(self):
        index = Indexer(["a", "b"])
        assert "a" in index
        assert "z" not in index
        assert list(index) == ["a", "b"]
        assert len(index) == 2

    def test_non_string_labels(self):
        index = Indexer([10, (1, 2)])
        assert index.id_of(10) == 0
        assert index.id_of((1, 2)) == 1
