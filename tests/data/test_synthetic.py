"""Tests for the synthetic dataset generator and its ground truth."""

import numpy as np
import pytest

from repro.data.synthetic import (
    EventSpec,
    SyntheticConfig,
    auto_events,
    generate,
    sample_rows,
)
from tests.conftest import tiny_config


class TestEventSpec:
    def test_activity_peaks_at_peak(self):
        event = EventSpec(name="e", peak=5, width=1.0, strength=2.0)
        curve = event.activity(10)
        assert curve.argmax() == 5
        assert curve.max() == pytest.approx(2.0)

    def test_activity_decays_with_distance(self):
        curve = EventSpec(name="e", peak=5, width=1.0).activity(10)
        assert curve[5] > curve[6] > curve[7] > curve[9]


class TestConfigValidation:
    def test_rejects_zero_users(self):
        with pytest.raises(ValueError):
            tiny_config(num_users=0)

    def test_rejects_no_events(self):
        with pytest.raises(ValueError):
            tiny_config(events=())

    def test_rejects_event_peak_outside_range(self):
        with pytest.raises(ValueError, match="peaks outside"):
            tiny_config(events=(EventSpec(name="bad", peak=99),))

    def test_rejects_too_many_dedicated_items(self):
        events = tuple(
            EventSpec(name=f"e{i}", peak=1, num_items=30) for i in range(5)
        )
        with pytest.raises(ValueError, match="dedicated"):
            tiny_config(events=events)

    def test_rejects_bad_noise_fraction(self):
        with pytest.raises(ValueError):
            tiny_config(noise_fraction=1.0)

    def test_rejects_bad_lifecycle(self):
        with pytest.raises(ValueError):
            tiny_config(item_lifecycle=0.0)

    def test_rejects_bad_engagement(self):
        with pytest.raises(ValueError):
            tiny_config(noise_engagement=0.5)


class TestGenerate:
    def test_deterministic_for_fixed_seed(self):
        c1, _ = generate(tiny_config())
        c2, _ = generate(tiny_config())
        np.testing.assert_array_equal(c1.users, c2.users)
        np.testing.assert_array_equal(c1.scores, c2.scores)

    def test_different_seeds_differ(self):
        c1, _ = generate(tiny_config(seed=1))
        c2, _ = generate(tiny_config(seed=2))
        assert not np.array_equal(c1.items, c2.items)

    def test_dimensions_match_config(self, tiny_cuboid):
        cuboid, truth = tiny_cuboid
        cfg = truth.config
        assert cuboid.shape == (cfg.num_users, cfg.num_intervals, cfg.num_items)

    def test_ground_truth_distributions_are_stochastic(self, tiny_cuboid):
        _, truth = tiny_cuboid
        np.testing.assert_allclose(truth.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(truth.phi.sum(axis=1), 1.0)
        np.testing.assert_allclose(truth.phi_events.sum(axis=1), 1.0)
        np.testing.assert_allclose(truth.temporal_context.sum(axis=1), 1.0)
        assert np.all((truth.lambda_u >= 0) & (truth.lambda_u <= 1))

    def test_event_items_are_labelled(self, tiny_cuboid):
        _, truth = tiny_cuboid
        for name, ids in truth.event_items.items():
            for v in ids:
                assert name in truth.item_labels[int(v)]

    def test_event_items_disjoint(self, tiny_cuboid):
        _, truth = tiny_cuboid
        all_ids = np.concatenate(list(truth.event_items.values()))
        assert len(np.unique(all_ids)) == len(all_ids)

    def test_source_values(self, tiny_cuboid):
        _, truth = tiny_cuboid
        assert set(np.unique(truth.source)) <= {0, 1, 2}

    def test_noise_fraction_zero_means_no_noise(self):
        _, truth = generate(tiny_config(noise_fraction=0.0))
        assert not np.any(truth.source == 2)

    def test_noise_fraction_controls_share(self):
        _, truth = generate(tiny_config(noise_fraction=0.4, seed=9))
        share = float(np.mean(truth.source == 2))
        assert 0.3 < share < 0.5

    def test_context_ratings_cluster_near_event_peaks(self):
        cfg = tiny_config(lambda_alpha=0.5, lambda_beta=8.0, noise_fraction=0.0)
        _, truth = generate(cfg)
        # Almost all ratings are context-driven; their intervals should
        # concentrate around event peaks.
        peaks = [event.peak for event in cfg.events]
        context_shares = truth.temporal_context.max(axis=1)
        assert context_shares.mean() > 0.4  # peaked contexts

    def test_distinct_items_removes_duplicates(self):
        cuboid, truth = generate(tiny_config(distinct_items=True))
        pairs = cuboid.users * cuboid.num_items + cuboid.items
        assert len(np.unique(pairs)) == len(pairs)

    def test_explicit_scores_in_star_range(self):
        cuboid, _ = generate(tiny_config(explicit_scores=True))
        # Coalescing may sum duplicate (u, t, v) stars, so check the floor
        # and that values are integral multiples of 1.
        assert cuboid.scores.min() >= 1.0
        np.testing.assert_allclose(cuboid.scores, np.round(cuboid.scores))

    def test_engagement_inflates_counts(self):
        calm, _ = generate(tiny_config(noise_fraction=0.3, noise_engagement=1.0))
        loud, _ = generate(tiny_config(noise_fraction=0.3, noise_engagement=6.0))
        assert loud.total_score > calm.total_score

    def test_lambda_matches_beta_prior(self):
        _, truth = generate(tiny_config(lambda_alpha=8.0, lambda_beta=2.0, num_users=400))
        assert abs(truth.lambda_u.mean() - 0.8) < 0.05

    def test_availability_rows_normalised(self, tiny_cuboid):
        _, truth = tiny_cuboid
        np.testing.assert_allclose(truth.availability.sum(axis=1), 1.0)

    def test_evergreen_head_stays_flat(self):
        _, truth = generate(
            tiny_config(item_lifecycle=2.0, evergreen_fraction=0.1)
        )
        dedicated = {int(v) for ids in truth.event_items.values() for v in ids}
        evergreen = [v for v in range(8) if v not in dedicated]
        flat = 1.0 / truth.config.num_intervals
        for v in evergreen:
            np.testing.assert_allclose(truth.availability[v], flat)
        # Non-evergreen items still decay.
        tail_item = truth.config.num_items - 1
        if tail_item not in dedicated:
            assert truth.availability[tail_item].max() > flat

    def test_evergreen_fraction_validated(self):
        with pytest.raises(ValueError):
            tiny_config(evergreen_fraction=1.5)

    def test_infinite_lifecycle_flat_availability(self):
        _, truth = generate(tiny_config(item_lifecycle=float("inf")))
        expected = 1.0 / truth.config.num_intervals
        np.testing.assert_allclose(truth.availability, expected)

    def test_labels_round_trip_through_indexer(self, tiny_cuboid):
        cuboid, truth = tiny_cuboid
        assert cuboid.item_index.label_of(0) == truth.item_labels[0]


class TestSampleRows:
    def test_respects_row_distributions(self, rng):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        rows = np.array([0, 1, 0, 1])
        draws = sample_rows(probs, rows, rng)
        assert draws.tolist() == [0, 1, 0, 1]

    def test_empirical_frequencies(self, rng):
        probs = np.array([[0.2, 0.8]])
        rows = np.zeros(20_000, dtype=np.int64)
        draws = sample_rows(probs, rows, rng)
        assert abs(draws.mean() - 0.8) < 0.02


class TestAutoEvents:
    def test_count_and_span(self):
        events = auto_events(5, 50, rng_seed=1)
        assert len(events) == 5
        peaks = [e.peak for e in events]
        assert all(0 <= p < 50 for p in peaks)
        assert peaks == sorted(peaks)

    def test_unique_names(self):
        events = auto_events(4, 20)
        assert len({e.name for e in events}) == 4

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            auto_events(0, 10)
