"""Tests for time discretisation."""

import numpy as np
import pytest

from repro.data.intervals import SECONDS_PER_DAY, TimeDiscretizer, rediscretize


class TestTimeDiscretizer:
    def test_basic_bucketing(self):
        disc = TimeDiscretizer(origin=0.0, interval_seconds=10.0)
        assert disc.interval_of(0.0) == 0
        assert disc.interval_of(9.99) == 0
        assert disc.interval_of(10.0) == 1
        assert disc.interval_of(25.0) == 2

    def test_from_days(self):
        disc = TimeDiscretizer.from_days(origin=0.0, days=3)
        assert disc.interval_seconds == 3 * SECONDS_PER_DAY
        assert disc.interval_of(2.9 * SECONDS_PER_DAY) == 0
        assert disc.interval_of(3.0 * SECONDS_PER_DAY) == 1

    def test_before_origin_rejected(self):
        disc = TimeDiscretizer(origin=100.0, interval_seconds=10.0)
        with pytest.raises(ValueError, match="precedes"):
            disc.interval_of(99.0)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            TimeDiscretizer(origin=0.0, interval_seconds=0.0)

    def test_vectorised_matches_scalar(self):
        disc = TimeDiscretizer(origin=5.0, interval_seconds=7.0)
        stamps = [5.0, 11.9, 12.0, 33.3]
        vector = disc.intervals_of(stamps)
        assert vector.tolist() == [disc.interval_of(t) for t in stamps]

    def test_vectorised_rejects_early_timestamps(self):
        disc = TimeDiscretizer(origin=5.0, interval_seconds=7.0)
        with pytest.raises(ValueError):
            disc.intervals_of([5.0, 4.0])

    def test_covering_spans_exactly(self):
        stamps = [10.0, 50.0, 90.0]
        disc = TimeDiscretizer.covering(stamps, num_intervals=4)
        buckets = disc.intervals_of(stamps)
        assert buckets.min() == 0
        assert buckets.max() == 3

    def test_covering_single_point(self):
        disc = TimeDiscretizer.covering([42.0], num_intervals=3)
        assert disc.interval_of(42.0) == 0

    def test_covering_validation(self):
        with pytest.raises(ValueError):
            TimeDiscretizer.covering([], num_intervals=2)
        with pytest.raises(ValueError):
            TimeDiscretizer.covering([1.0], num_intervals=0)

    def test_start_of(self):
        disc = TimeDiscretizer(origin=3.0, interval_seconds=5.0)
        assert disc.start_of(0) == 3.0
        assert disc.start_of(2) == 13.0
        with pytest.raises(ValueError):
            disc.start_of(-1)

    def test_num_intervals(self):
        disc = TimeDiscretizer(origin=0.0, interval_seconds=10.0)
        assert disc.num_intervals([0.0, 35.0]) == 4
        assert disc.num_intervals([]) == 0


class TestRediscretize:
    def test_merge_by_factor(self):
        fine = np.array([0, 1, 2, 3, 4, 5])
        coarse = rediscretize(fine, old_length=1.0, new_length=3.0)
        assert coarse.tolist() == [0, 0, 0, 1, 1, 1]

    def test_identity(self):
        fine = np.array([0, 5, 9])
        assert rediscretize(fine, 2.0, 2.0).tolist() == [0, 5, 9]

    def test_finer_rejected(self):
        with pytest.raises(ValueError, match="finer"):
            rediscretize(np.array([0]), old_length=2.0, new_length=1.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            rediscretize(np.array([0]), old_length=0.0, new_length=1.0)
