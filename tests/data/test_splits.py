"""Tests for train/test splitting."""

import numpy as np
import pytest

from repro.data.cuboid import RatingCuboid
from repro.data.splits import (
    cross_validation_splits,
    holdout_split,
    leave_last_interval_split,
)


class TestHoldoutSplit:
    def test_partitions_all_entries(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        split = holdout_split(cuboid, seed=0)
        assert split.train.nnz + split.test.nnz == cuboid.nnz
        assert split.train.shape == cuboid.shape
        assert split.test.shape == cuboid.shape

    def test_test_fraction_approximate(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        split = holdout_split(cuboid, test_fraction=0.2, seed=0)
        fraction = split.test.nnz / cuboid.nnz
        assert 0.12 < fraction < 0.28

    def test_stratified_within_groups(self):
        # One user, one interval, 10 items: exactly 2 land in test.
        cub = RatingCuboid.from_arrays([0] * 10, [0] * 10, list(range(10)))
        split = holdout_split(cub, test_fraction=0.2, seed=3)
        assert split.test.nnz == 2
        assert split.train.nnz == 8

    def test_deterministic_by_seed(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        s1 = holdout_split(cuboid, seed=5)
        s2 = holdout_split(cuboid, seed=5)
        np.testing.assert_array_equal(s1.test.items, s2.test.items)

    def test_different_seeds_differ(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        s1 = holdout_split(cuboid, seed=1)
        s2 = holdout_split(cuboid, seed=2)
        assert not np.array_equal(s1.test.items, s2.test.items)

    def test_invalid_fraction(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        with pytest.raises(ValueError):
            holdout_split(cuboid, test_fraction=0.0)
        with pytest.raises(ValueError):
            holdout_split(cuboid, test_fraction=1.0)

    def test_query_pairs_cover_test_entries(self, tiny_split):
        pairs = set(tiny_split.query_pairs())
        test = tiny_split.test
        observed = set(zip(test.users.tolist(), test.intervals.tolist()))
        assert pairs == observed


class TestCrossValidation:
    def test_folds_partition_exactly(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        folds = list(cross_validation_splits(cuboid, num_folds=5, seed=0))
        assert len(folds) == 5
        total_test = sum(split.test.nnz for split in folds)
        assert total_test == cuboid.nnz
        for split in folds:
            assert split.train.nnz + split.test.nnz == cuboid.nnz

    def test_folds_are_disjoint(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        folds = list(cross_validation_splits(cuboid, num_folds=4, seed=0))
        seen: set[tuple[int, int, int]] = set()
        for split in folds:
            entries = set(
                zip(
                    split.test.users.tolist(),
                    split.test.intervals.tolist(),
                    split.test.items.tolist(),
                )
            )
            assert not (entries & seen)
            seen |= entries

    def test_min_folds(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        with pytest.raises(ValueError):
            list(cross_validation_splits(cuboid, num_folds=1))


class TestLeaveLastInterval:
    def test_last_interval_held_out(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        split = leave_last_interval_split(cuboid)
        last = int(cuboid.intervals.max())
        assert np.all(split.test.intervals == last)
        assert not np.any(split.train.intervals == last)

    def test_empty_cuboid_rejected(self):
        empty = RatingCuboid.from_arrays([], [], [], num_users=1, num_intervals=1, num_items=1)
        with pytest.raises(ValueError):
            leave_last_interval_split(empty)
