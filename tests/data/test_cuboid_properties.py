"""Property-based tests for rating-cuboid invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.cuboid import RatingCuboid


@st.composite
def coordinate_arrays(draw):
    n = draw(st.integers(1, 8))
    t = draw(st.integers(1, 6))
    v = draw(st.integers(1, 10))
    size = draw(st.integers(0, 60))
    users = draw(
        st.lists(st.integers(0, n - 1), min_size=size, max_size=size)
    )
    intervals = draw(
        st.lists(st.integers(0, t - 1), min_size=size, max_size=size)
    )
    items = draw(st.lists(st.integers(0, v - 1), min_size=size, max_size=size))
    scores = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
            min_size=size,
            max_size=size,
        )
    )
    return users, intervals, items, scores, n, t, v


def build(data):
    users, intervals, items, scores, n, t, v = data
    return RatingCuboid.from_arrays(
        users, intervals, items, scores, num_users=n, num_intervals=t, num_items=v
    )


class TestCoalesceInvariants:
    @settings(max_examples=80, deadline=None)
    @given(coordinate_arrays())
    def test_total_score_preserved(self, data):
        cub = build(data)
        assert cub.total_score == np.float64(sum(data[3])) or np.isclose(
            cub.total_score, sum(data[3])
        )

    @settings(max_examples=80, deadline=None)
    @given(coordinate_arrays())
    def test_coalesce_idempotent(self, data):
        cub = build(data)
        again = cub.coalesce()
        np.testing.assert_array_equal(cub.users, again.users)
        np.testing.assert_allclose(cub.scores, again.scores)

    @settings(max_examples=80, deadline=None)
    @given(coordinate_arrays())
    def test_coordinates_unique_after_coalesce(self, data):
        cub = build(data)
        keys = (
            cub.users * cub.num_intervals * cub.num_items
            + cub.intervals * cub.num_items
            + cub.items
        )
        assert len(np.unique(keys)) == cub.nnz

    @settings(max_examples=80, deadline=None)
    @given(coordinate_arrays())
    def test_dense_round_trip(self, data):
        cub = build(data)
        dense = cub.to_dense()
        assert np.isclose(dense.sum(), cub.total_score)
        assert (dense > 0).sum() == cub.nnz


class TestTransformInvariants:
    @settings(max_examples=60, deadline=None)
    @given(coordinate_arrays(), st.integers(1, 5))
    def test_coarsen_preserves_mass(self, data, factor):
        cub = build(data)
        coarse = cub.coarsen_intervals(factor)
        assert np.isclose(coarse.total_score, cub.total_score)
        assert coarse.num_intervals == -(-cub.num_intervals // factor)
        assert coarse.nnz <= cub.nnz

    @settings(max_examples=60, deadline=None)
    @given(coordinate_arrays(), st.integers(0, 2**31 - 1))
    def test_select_partition_is_lossless(self, data, seed):
        cub = build(data)
        rng = np.random.default_rng(seed)
        mask = rng.random(cub.nnz) < 0.5
        a, b = cub.select(mask), cub.select(~mask)
        assert a.nnz + b.nnz == cub.nnz
        assert np.isclose(a.total_score + b.total_score, cub.total_score)

    @settings(max_examples=60, deadline=None)
    @given(coordinate_arrays())
    def test_statistics_consistent_with_dense(self, data):
        cub = build(data)
        dense = cub.to_dense()
        np.testing.assert_allclose(cub.item_popularity(), dense.sum(axis=(0, 1)))
        np.testing.assert_allclose(
            cub.interval_item_matrix(), dense.sum(axis=0)
        )
        # Distinct user counts per item.
        present = (dense > 0).any(axis=1)  # (N, V)
        np.testing.assert_array_equal(cub.item_user_counts(), present.sum(axis=0))
