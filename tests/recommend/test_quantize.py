"""Tests for quantized candidate selection (``repro.recommend.quantize``).

The load-bearing contract: serving with ``dtype="float16"`` or
``dtype="int8"`` must return *bitwise-identical* top-k — items, scores,
tie order — to the exact float64 engine, because the quantized pass only
selects candidates (widened by a proven error margin) and the final
scores always come from the float64 rescore. Property tests pin that
across random models, adversarial near-ties, duplicates, mixed
intervals and ``k ≥ V``; a dedicated test checks the margin bound
actually upper-bounds the observed quantization error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel
from repro.recommend import TemporalRecommender
from repro.recommend.quantize import (
    QUANTIZED_DTYPES,
    ContextVector,
    QuantizedMatrix,
    quantize_matrix,
    selection_margins,
    staged_select_gemm,
)

from .test_serving import make_itcam, make_ttcam


def assert_quantized_matches_float64(model, queries, k, dtype):
    """Quantized batch == float64 batch, bitwise (items, scores, order)."""
    rec = TemporalRecommender(model)
    exact = rec.recommend_batch(queries, k=k)
    approx = rec.recommend_batch(queries, k=k, dtype=dtype)
    for (user, interval), r64, rq in zip(queries, exact, approx):
        assert rq.items == r64.items, (dtype, user, interval)
        assert rq.scores == r64.scores, (dtype, user, interval)


class TestQuantizedServingIdentity:
    @given(
        seed=st.integers(0, 5_000),
        kind=st.sampled_from(["ttcam", "itcam"]),
        dtype=st.sampled_from(list(QUANTIZED_DTYPES)),
        k=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_float64_exactly(self, seed, kind, dtype, k):
        rng = np.random.default_rng(seed)
        num_items = int(rng.integers(30, 90))
        num_intervals = 5
        maker = make_ttcam if kind == "ttcam" else make_itcam
        model = maker(rng, num_items=num_items, num_intervals=num_intervals)
        queries = [
            (int(rng.integers(0, 12)), int(rng.integers(0, num_intervals)))
            for _ in range(20)
        ]
        queries += [queries[0], queries[7]]  # duplicates, mixed intervals
        assert_quantized_matches_float64(model, queries, k, dtype)

    @given(
        seed=st.integers(0, 2_000),
        kind=st.sampled_from(["ttcam", "itcam"]),
        dtype=st.sampled_from(list(QUANTIZED_DTYPES)),
    )
    @settings(max_examples=10, deadline=None)
    def test_k_at_least_catalogue(self, seed, kind, dtype):
        rng = np.random.default_rng(seed)
        maker = make_ttcam if kind == "ttcam" else make_itcam
        model = maker(rng, num_items=25)
        queries = [(0, 0), (3, 2), (3, 2)]
        for k in (25, 26, 100):
            assert_quantized_matches_float64(model, queries, k, dtype)

    @given(
        seed=st.integers(0, 1_000),
        dtype=st.sampled_from(list(QUANTIZED_DTYPES)),
        spread=st.sampled_from([1e-15, 1e-12, 1e-9]),
    )
    @settings(max_examples=15, deadline=None)
    def test_adversarial_near_ties(self, seed, dtype, spread):
        # Columns differing by less than any quantization step: the
        # approximate scores cannot distinguish the contenders, so only
        # a correct margin keeps the exact ranking of the tie-break.
        rng = np.random.default_rng(seed)
        num_items, k1, k2 = 50, 3, 2
        base = rng.dirichlet(np.full(num_items, 0.5))
        phi = np.tile(base, (k1, 1)) * (1.0 + rng.uniform(-spread, spread, (k1, num_items)))
        phi /= phi.sum(axis=1, keepdims=True)
        phi_time = np.tile(base, (k2, 1)) * (
            1.0 + rng.uniform(-spread, spread, (k2, num_items))
        )
        phi_time /= phi_time.sum(axis=1, keepdims=True)
        params = TTCAMParameters(
            theta=rng.dirichlet(np.full(k1, 0.4), size=8),
            phi=phi,
            theta_time=rng.dirichlet(np.full(k2, 0.4), size=4),
            phi_time=phi_time,
            lambda_u=rng.beta(3.0, 3.0, size=8),
        )
        queries = [(u, u % 4) for u in range(8)]
        assert_quantized_matches_float64(LoadedModel(params), queries, 10, dtype)

    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_fully_tied_rows_keep_item_id_order(self, dtype):
        rng = np.random.default_rng(0)
        num_items = 40
        params = TTCAMParameters(
            theta=rng.dirichlet(np.full(3, 0.4), size=6),
            phi=np.full((3, num_items), 1.0 / num_items),
            theta_time=rng.dirichlet(np.full(2, 0.4), size=4),
            phi_time=np.full((2, num_items), 1.0 / num_items),
            lambda_u=rng.beta(3.0, 3.0, size=6),
        )
        model = LoadedModel(params)
        queries = [(0, 0), (5, 3), (2, 1)]
        assert_quantized_matches_float64(model, queries, 10, dtype)
        rec = TemporalRecommender(model)
        for result in rec.recommend_batch(queries, k=10, dtype=dtype):
            assert result.items == list(range(10))


class TestMarginBound:
    @given(
        seed=st.integers(0, 5_000),
        dtype=st.sampled_from(list(QUANTIZED_DTYPES)),
        rows=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_margin_upper_bounds_observed_error(self, seed, dtype, rows):
        rng = np.random.default_rng(seed)
        num_topics = int(rng.integers(2, 9))
        num_items = int(rng.integers(10, 400))
        matrix = rng.dirichlet(np.full(num_items, 0.1), size=num_topics)
        qmatrix = quantize_matrix(matrix, dtype)
        weights = rng.dirichlet(np.full(num_topics, 0.3), size=rows)

        scores = np.empty((rows, num_items), dtype=np.float32)
        stage = np.empty((num_topics, min(num_items, 37)), dtype=np.float32)
        staged_select_gemm(
            qmatrix, weights.astype(np.float32), scores, stage, stage_columns=37
        )
        exact = weights @ matrix
        observed = np.abs(scores.astype(np.float64) - exact).max(axis=1)
        eps = selection_margins(np.abs(weights), qmatrix)
        assert np.all(observed <= eps), (observed, eps)

    @given(seed=st.integers(0, 2_000), dtype=st.sampled_from(list(QUANTIZED_DTYPES)))
    @settings(max_examples=20, deadline=None)
    def test_margin_with_context_vector(self, seed, dtype):
        # The TCAM split path adds a (1−λ) weighted quantized context
        # row on top of the GEMM; its error terms extend the bound.
        rng = np.random.default_rng(seed)
        num_topics, num_items, rows = 4, 120, 5
        matrix = rng.dirichlet(np.full(num_items, 0.1), size=num_topics)
        context = rng.dirichlet(np.full(num_items, 0.1))
        qmatrix = quantize_matrix(matrix, dtype)
        qcontext = ContextVector.from_exact(context)
        lam = rng.beta(3.0, 3.0, size=rows)
        weights = lam[:, None] * rng.dirichlet(np.full(num_topics, 0.3), size=rows)

        scores = np.empty((rows, num_items), dtype=np.float32)
        stage = np.empty((num_topics, num_items), dtype=np.float32)
        staged_select_gemm(qmatrix, weights.astype(np.float32), scores, stage)
        scores += (1.0 - lam)[:, None].astype(np.float32) * qcontext.values
        exact = weights @ matrix + (1.0 - lam)[:, None] * context
        observed = np.abs(scores.astype(np.float64) - exact).max(axis=1)
        eps = selection_margins(
            np.abs(weights),
            qmatrix,
            context_weight=np.abs(1.0 - lam),
            context_delta=qcontext.delta,
            context_abs_max=qcontext.abs_max,
        )
        assert np.all(observed <= eps), (observed, eps)


class TestQuantizedMatrix:
    def test_int8_round_trip_and_nbytes(self):
        rng = np.random.default_rng(3)
        matrix = rng.dirichlet(np.full(64, 0.1), size=5)
        q = quantize_matrix(matrix, "int8")
        assert isinstance(q, QuantizedMatrix)
        assert q.dtype == "int8"
        assert q.shape == (5, 64)
        assert q.storage.dtype == np.int8
        assert np.abs(q.storage).max() <= 127
        # Effective values stay within one scale step of the truth.
        effective = q.storage.astype(np.float64) * q.scale[:, None]
        step = np.abs(matrix).max(axis=1) / 127.0
        assert np.all(np.abs(effective - matrix) <= step[:, None] * (1.0 + 1e-9))
        assert q.nbytes < matrix.nbytes

    def test_float16_has_no_scale(self):
        rng = np.random.default_rng(4)
        q = quantize_matrix(rng.dirichlet(np.full(32, 0.1), size=3), "float16")
        assert q.storage.dtype == np.float16
        assert q.scale is None
        # nbytes counts storage plus the per-row error statistics.
        assert q.storage.nbytes <= q.nbytes < q.storage.astype(np.float64).nbytes

    def test_zero_row_is_representable(self):
        matrix = np.zeros((2, 16))
        matrix[1, 3] = 1.0
        for dtype in QUANTIZED_DTYPES:
            q = quantize_matrix(matrix, dtype)
            out = np.empty((2, 16), dtype=np.float32)
            q.dequantize_block(slice(0, 16), out)
            assert np.all(out[0] == 0.0)
            assert q.delta[0] == 0.0

    def test_dequantize_block_matches_full(self):
        rng = np.random.default_rng(5)
        matrix = rng.dirichlet(np.full(40, 0.1), size=4)
        q = quantize_matrix(matrix, "int8")
        full = np.empty((4, 40), dtype=np.float32)
        q.dequantize_block(slice(0, 40), full)
        part = np.empty((4, 40), dtype=np.float32)
        for start in range(0, 40, 7):
            stop = min(start + 7, 40)
            q.dequantize_block(slice(start, stop), part[:, : stop - start])
            assert np.array_equal(part[:, : stop - start], full[:, start:stop])

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            quantize_matrix(np.ones((2, 4)) / 4.0, "int4")


class TestContextVector:
    def test_delta_bounds_float32_cast(self):
        rng = np.random.default_rng(6)
        exact = rng.dirichlet(np.full(200, 0.05))
        ctx = ContextVector.from_exact(exact)
        assert ctx.values.dtype == np.float32
        observed = np.abs(ctx.values.astype(np.float64) - exact).max()
        assert observed <= ctx.delta
        assert np.abs(ctx.values).max() <= ctx.abs_max
