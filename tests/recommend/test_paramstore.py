"""Tests for the memory-mapped parameter store (``repro.recommend.paramstore``).

The sidecar layout is a derived serving artifact: it must reproduce the
snapshot's parameters and every persisted derived array *bitwise*, fail
loudly (``SnapshotCorruptError``) on any tampering, and — through
``LoadedModel.from_file(mmap=True)`` — serve results identical to the
eager path while degrading gracefully when the sidecar is missing.
"""

import json

import numpy as np
import pytest

from repro.core.serialize import LoadedModel, load_params, save_params
from repro.recommend import TemporalRecommender
from repro.recommend.paramstore import (
    MANIFEST_NAME,
    ParamStore,
    store_dir,
    write_store,
)
from repro.recommend.quantize import QUANTIZED_DTYPES, quantize_matrix
from repro.recommend.threshold import SortedTopicLists
from repro.robustness.errors import SnapshotCorruptError

from .test_serving import make_itcam, make_ttcam


@pytest.fixture(scope="module", params=["ttcam", "itcam"])
def snapshot(request, tmp_path_factory):
    rng = np.random.default_rng(11)
    maker = make_ttcam if request.param == "ttcam" else make_itcam
    model = maker(rng, num_users=10, num_items=70, num_intervals=4)
    path = tmp_path_factory.mktemp("store") / "model.npz"
    return save_params(model.params_, path, mmap_layout=True)


class TestRoundTrip:
    def test_sidecar_written_next_to_snapshot(self, snapshot):
        directory = store_dir(snapshot)
        assert directory.is_dir()
        assert (directory / MANIFEST_NAME).exists()

    def test_params_bitwise_equal_to_eager_load(self, snapshot):
        eager = load_params(snapshot)
        store = ParamStore.for_snapshot(snapshot)
        restored = store.params()
        assert type(restored) is type(eager)
        for name in ("theta", "phi", "theta_time", "lambda_u"):
            assert np.array_equal(getattr(restored, name), getattr(eager, name)), name
        if hasattr(eager, "phi_time"):
            assert np.array_equal(restored.phi_time, eager.phi_time)

    def test_derived_arrays_match_online_construction(self, snapshot):
        eager = load_params(snapshot)
        store = ParamStore.for_snapshot(snapshot)
        if hasattr(eager, "phi_time"):  # TTCAM: one static matrix
            lists = SortedTopicLists.build(eager.topic_item_matrix())
            stored = store.sorted_lists("static")
            assert stored is not None
            assert np.array_equal(stored.order, lists.order)
            assert np.array_equal(stored.values, lists.values)
            assert np.array_equal(stored.item_topic, lists.item_topic)
            assert np.array_equal(store.item_topic("static"), lists.item_topic)
        else:  # ITCAM: per-interval matrices are not persisted
            assert store.sorted_lists(0) is None
            assert store.item_topic(0) is None
        for dtype in QUANTIZED_DTYPES:
            stored_q = store.quantized_selection(dtype)
            fresh = quantize_matrix(np.asarray(eager.phi), dtype)
            assert stored_q is not None
            assert np.array_equal(stored_q.storage, fresh.storage)
            assert np.array_equal(stored_q.delta, fresh.delta)
            assert np.array_equal(stored_q.row_abs_max, fresh.row_abs_max)
            if fresh.scale is not None:
                assert np.array_equal(stored_q.scale, fresh.scale)

    def test_context_rows_bitwise_match_online_expression(self, snapshot):
        eager = load_params(snapshot)
        store = ParamStore.for_snapshot(snapshot)
        for interval in range(eager.num_intervals):
            row = store.context_row(interval, "float64")
            if hasattr(eager, "phi_time"):
                expected = eager.theta_time[interval] @ eager.phi_time
            else:
                expected = eager.theta_time[interval]
            assert np.array_equal(row, expected), interval
            ctx = store.context_vector(interval)
            assert np.array_equal(ctx.values, expected.astype(np.float32))

    def test_verify_passes_and_nbytes_positive(self, snapshot):
        store = ParamStore.for_snapshot(snapshot)
        store.verify()
        assert store.nbytes > 0


class TestCorruption:
    def _copy_store(self, snapshot, tmp_path):
        import shutil

        copy = tmp_path / "model.npz"
        shutil.copy(snapshot, copy)
        shutil.copytree(store_dir(snapshot), store_dir(copy))
        return copy

    def test_missing_sidecar_raises(self, tmp_path):
        with pytest.raises(SnapshotCorruptError, match="sidecar"):
            ParamStore.for_snapshot(tmp_path / "absent.npz")

    def test_flipped_bytes_fail_verify(self, snapshot, tmp_path):
        copy = self._copy_store(snapshot, tmp_path)
        target = sorted(store_dir(copy).glob("*.npy"))[0]
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        # Small arrays are hashed eagerly at open; large ones only by
        # verify(). Either way the corruption must surface as the typed
        # error, never as garbage parameters.
        with pytest.raises(SnapshotCorruptError):
            ParamStore.for_snapshot(copy).verify()

    def test_truncated_manifest_rejected(self, snapshot, tmp_path):
        copy = self._copy_store(snapshot, tmp_path)
        manifest = store_dir(copy) / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[:40])
        with pytest.raises(SnapshotCorruptError):
            ParamStore.for_snapshot(copy)

    def test_missing_array_rejected(self, snapshot, tmp_path):
        copy = self._copy_store(snapshot, tmp_path)
        sorted(store_dir(copy).glob("*.npy"))[0].unlink()
        with pytest.raises(SnapshotCorruptError):
            ParamStore.for_snapshot(copy)

    def test_tampered_parameters_fail_spot_check(self, snapshot, tmp_path):
        copy = self._copy_store(snapshot, tmp_path)
        theta_file = store_dir(copy) / "theta.npy"
        theta = np.load(theta_file)
        theta[0] = 9.0  # no longer row-stochastic
        np.save(theta_file, theta)
        manifest_file = store_dir(copy) / MANIFEST_NAME
        manifest = json.loads(manifest_file.read_text())
        from repro.recommend.paramstore import _file_sha256

        manifest["arrays"]["theta"]["sha256"] = _file_sha256(theta_file)
        manifest_file.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotCorruptError):
            ParamStore.for_snapshot(copy)


class TestMmapServing:
    def test_mmap_batch_identical_to_eager(self, snapshot):
        eager = TemporalRecommender(LoadedModel.from_file(snapshot))
        queries = [(u % 10, u % 4) for u in range(16)] + [(0, 0)]
        expected = eager.recommend_batch(queries, k=6)
        mapped_model = LoadedModel.from_file(snapshot, mmap=True)
        assert mapped_model.param_store is not None
        for dtype in ("float64", "float32", "float16", "int8"):
            mapped = TemporalRecommender(mapped_model)
            batch = mapped.recommend_batch(queries, k=6, dtype=dtype)
            for r_eager, r_mmap in zip(expected, batch):
                assert r_mmap.items == r_eager.items, dtype
                if dtype != "float32":
                    assert r_mmap.scores == r_eager.scores, dtype

    def test_mmap_single_query_identical_to_eager(self, snapshot):
        eager = TemporalRecommender(LoadedModel.from_file(snapshot))
        mapped = TemporalRecommender(LoadedModel.from_file(snapshot, mmap=True))
        for user, interval in [(0, 0), (3, 2), (9, 3)]:
            r_eager = eager.recommend(user, interval, k=5)
            r_mmap = mapped.recommend(user, interval, k=5)
            assert r_mmap.items == r_eager.items
            assert r_mmap.scores == r_eager.scores

    def test_missing_sidecar_degrades_with_warning(self, tmp_path):
        rng = np.random.default_rng(23)
        model = make_ttcam(rng)
        path = save_params(model.params_, tmp_path / "plain.npz")
        with pytest.warns(RuntimeWarning, match="falling back"):
            loaded = LoadedModel.from_file(path, mmap=True)
        assert loaded.param_store is None
        rec = TemporalRecommender(loaded)
        assert rec.recommend(0, 0, k=3).items
