"""Tests for query expansion and deterministic ranking."""

import numpy as np
import pytest

from repro.recommend.ranking import QuerySpace, Recommendation, TopKResult, rank_order


def make_query(k=3, v=6, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(k))
    matrix = rng.dirichlet(np.ones(v), size=k)
    return QuerySpace(weights=weights, item_matrix=matrix)


class TestQuerySpace:
    def test_score_matches_score_all(self):
        query = make_query()
        all_scores = query.score_all()
        for v in range(query.num_items):
            assert query.score(v) == pytest.approx(all_scores[v])

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="topics"):
            QuerySpace(weights=np.ones(2) / 2, item_matrix=np.ones((3, 4)) / 4)
        with pytest.raises(ValueError, match="one-dimensional"):
            QuerySpace(weights=np.ones((2, 2)), item_matrix=np.ones((2, 4)))
        with pytest.raises(ValueError, match="two-dimensional"):
            QuerySpace(weights=np.ones(2), item_matrix=np.ones(4))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            QuerySpace(weights=np.array([0.5, -0.5]), item_matrix=np.ones((2, 3)))

    def test_properties(self):
        query = make_query(k=4, v=7)
        assert query.num_topics == 4
        assert query.num_items == 7


class TestTopKResult:
    def test_accessors(self):
        result = TopKResult(
            recommendations=[Recommendation(3, 0.5), Recommendation(1, 0.2)],
            items_scored=10,
        )
        assert result.items == [3, 1]
        assert result.scores == [0.5, 0.2]
        assert len(result) == 2


class TestRankOrder:
    def test_orders_by_score(self):
        scores = np.array([0.1, 0.5, 0.3])
        assert rank_order(scores, 3).tolist() == [1, 2, 0]

    def test_ties_break_to_smaller_id(self):
        scores = np.array([0.5, 0.5, 0.5])
        assert rank_order(scores, 2).tolist() == [0, 1]

    def test_k_larger_than_catalogue(self):
        scores = np.array([0.2, 0.1])
        assert len(rank_order(scores, 99)) == 2

    def test_exclusion(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        top = rank_order(scores, 2, exclude=np.array([0, 1]))
        assert top.tolist() == [2, 3]

    def test_exclusion_can_shrink_result(self):
        scores = np.array([0.9, 0.8])
        top = rank_order(scores, 2, exclude=np.array([0]))
        assert top.tolist() == [1]

    def test_does_not_mutate_input(self):
        scores = np.array([0.9, 0.8])
        rank_order(scores, 1, exclude=np.array([0]))
        assert scores[0] == 0.9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            rank_order(np.array([1.0]), 0)
