"""Tests for the Threshold Algorithm engines (exactness vs brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recommend.bruteforce import bruteforce_topk
from repro.recommend.ranking import QuerySpace
from repro.recommend.threshold import (
    SortedTopicLists,
    batched_ta_topk,
    classic_ta_topk,
    ta_topk,
)


def random_query(num_topics, num_items, seed):
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(num_topics) * 0.5)
    matrix = rng.dirichlet(np.ones(num_items) * 0.2, size=num_topics)
    return QuerySpace(weights=weights, item_matrix=matrix)


class TestSortedTopicLists:
    def test_values_descend(self):
        query = random_query(4, 20, seed=1)
        lists = SortedTopicLists.build(query.item_matrix)
        assert np.all(np.diff(lists.values, axis=1) <= 1e-15)

    def test_order_indexes_values(self):
        query = random_query(3, 10, seed=2)
        lists = SortedTopicLists.build(query.item_matrix)
        for z in range(3):
            np.testing.assert_allclose(
                query.item_matrix[z, lists.order[z]], lists.values[z]
            )

    def test_ties_break_to_smaller_id(self):
        matrix = np.array([[0.25, 0.25, 0.25, 0.25]])
        lists = SortedTopicLists.build(matrix)
        assert lists.order[0].tolist() == [0, 1, 2, 3]


class TestExactness:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_ta_matches_bruteforce(self, seed, k):
        query = random_query(5, 60, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        ta = ta_topk(query, lists, k)
        np.testing.assert_allclose(sorted(ta.scores), sorted(bf.scores), atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_classic_ta_matches_bruteforce(self, seed, k):
        query = random_query(5, 60, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        cta = classic_ta_topk(query, lists, k)
        np.testing.assert_allclose(sorted(cta.scores), sorted(bf.scores), atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 10])
    @pytest.mark.parametrize("block", [4, 64])
    def test_batched_ta_matches_bruteforce(self, seed, k, block):
        query = random_query(5, 60, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        bta = batched_ta_topk(query, lists, k, block=block)
        np.testing.assert_allclose(sorted(bta.scores), sorted(bf.scores), atol=1e-12)
        # Deterministic tie-breaking matches brute force item-for-item.
        assert bta.items == bf.items

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_topics=st.integers(1, 8),
        num_items=st.integers(1, 40),
        k=st.integers(1, 15),
    )
    def test_ta_matches_bruteforce_property(self, seed, num_topics, num_items, k):
        query = random_query(num_topics, num_items, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        ta = ta_topk(query, lists, k)
        np.testing.assert_allclose(sorted(ta.scores), sorted(bf.scores), atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_topics=st.integers(1, 8),
        num_items=st.integers(1, 40),
        k=st.integers(1, 15),
        block=st.integers(1, 50),
    )
    def test_batched_ta_property(self, seed, num_topics, num_items, k, block):
        query = random_query(num_topics, num_items, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        bta = batched_ta_topk(query, lists, k, block=block)
        np.testing.assert_allclose(sorted(bta.scores), sorted(bf.scores), atol=1e-12)

    def test_exclusion_respected(self):
        query = random_query(4, 30, seed=5)
        lists = SortedTopicLists.build(query.item_matrix)
        exclude = np.array([0, 1, 2, 3, 4])
        for engine in (ta_topk, classic_ta_topk, batched_ta_topk):
            result = engine(query, lists, 5, exclude=exclude)
            assert not set(result.items) & set(exclude.tolist())
            bf = bruteforce_topk(query, 5, exclude=exclude)
            np.testing.assert_allclose(sorted(result.scores), sorted(bf.scores), atol=1e-12)

    def test_k_exceeding_catalogue(self):
        query = random_query(3, 8, seed=6)
        lists = SortedTopicLists.build(query.item_matrix)
        result = ta_topk(query, lists, 50)
        assert len(result) == 8


class TestEfficiency:
    def test_ta_scores_fewer_items_than_bruteforce(self):
        query = random_query(6, 500, seed=7)
        lists = SortedTopicLists.build(query.item_matrix)
        ta = ta_topk(query, lists, 10)
        assert ta.items_scored < 500

    def test_accounting_fields(self):
        query = random_query(4, 50, seed=8)
        lists = SortedTopicLists.build(query.item_matrix)
        ta = ta_topk(query, lists, 5)
        assert ta.sorted_accesses > 0
        bf = bruteforce_topk(query, 5)
        assert bf.items_scored == 50
        assert bf.sorted_accesses == 0

    def test_concentrated_weights_terminate_early(self):
        """A query concentrated on one topic should stop almost immediately."""
        matrix = np.vstack([np.linspace(1, 0, 200) / 100.5] * 3)
        weights = np.array([1.0, 0.0, 0.0])
        query = QuerySpace(weights=weights, item_matrix=matrix)
        lists = SortedTopicLists.build(matrix)
        result = ta_topk(query, lists, 5)
        assert result.items_scored <= 20


class TestValidation:
    def test_topic_count_mismatch_rejected(self):
        query = random_query(3, 10, seed=9)
        lists = SortedTopicLists.build(random_query(4, 10, seed=9).item_matrix)
        with pytest.raises(ValueError, match="topics"):
            ta_topk(query, lists, 3)

    def test_invalid_k_rejected(self):
        query = random_query(3, 10, seed=9)
        lists = SortedTopicLists.build(query.item_matrix)
        with pytest.raises(ValueError):
            ta_topk(query, lists, 0)
