"""Tests for the Threshold Algorithm engines (exactness vs brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recommend.bruteforce import bruteforce_topk
from repro.recommend.ranking import QuerySpace
from repro.recommend.threshold import (
    SortedTopicLists,
    batched_ta_topk,
    classic_ta_topk,
    ta_topk,
)


def random_query(num_topics, num_items, seed):
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(num_topics) * 0.5)
    matrix = rng.dirichlet(np.ones(num_items) * 0.2, size=num_topics)
    return QuerySpace(weights=weights, item_matrix=matrix)


class TestSortedTopicLists:
    def test_values_descend(self):
        query = random_query(4, 20, seed=1)
        lists = SortedTopicLists.build(query.item_matrix)
        assert np.all(np.diff(lists.values, axis=1) <= 1e-15)

    def test_order_indexes_values(self):
        query = random_query(3, 10, seed=2)
        lists = SortedTopicLists.build(query.item_matrix)
        for z in range(3):
            np.testing.assert_allclose(
                query.item_matrix[z, lists.order[z]], lists.values[z]
            )

    def test_ties_break_to_smaller_id(self):
        matrix = np.array([[0.25, 0.25, 0.25, 0.25]])
        lists = SortedTopicLists.build(matrix)
        assert lists.order[0].tolist() == [0, 1, 2, 3]


class TestExactness:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_ta_matches_bruteforce(self, seed, k):
        query = random_query(5, 60, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        ta = ta_topk(query, lists, k)
        np.testing.assert_allclose(sorted(ta.scores), sorted(bf.scores), atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_classic_ta_matches_bruteforce(self, seed, k):
        query = random_query(5, 60, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        cta = classic_ta_topk(query, lists, k)
        np.testing.assert_allclose(sorted(cta.scores), sorted(bf.scores), atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 10])
    @pytest.mark.parametrize("block", [4, 64])
    def test_batched_ta_matches_bruteforce(self, seed, k, block):
        query = random_query(5, 60, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        bta = batched_ta_topk(query, lists, k, block=block)
        np.testing.assert_allclose(sorted(bta.scores), sorted(bf.scores), atol=1e-12)
        # Deterministic tie-breaking matches brute force item-for-item.
        assert bta.items == bf.items

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_topics=st.integers(1, 8),
        num_items=st.integers(1, 40),
        k=st.integers(1, 15),
    )
    def test_ta_matches_bruteforce_property(self, seed, num_topics, num_items, k):
        query = random_query(num_topics, num_items, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        ta = ta_topk(query, lists, k)
        np.testing.assert_allclose(sorted(ta.scores), sorted(bf.scores), atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_topics=st.integers(1, 8),
        num_items=st.integers(1, 40),
        k=st.integers(1, 15),
        block=st.integers(1, 50),
    )
    def test_batched_ta_property(self, seed, num_topics, num_items, k, block):
        query = random_query(num_topics, num_items, seed)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, k)
        bta = batched_ta_topk(query, lists, k, block=block)
        np.testing.assert_allclose(sorted(bta.scores), sorted(bf.scores), atol=1e-12)

    def test_exclusion_respected(self):
        query = random_query(4, 30, seed=5)
        lists = SortedTopicLists.build(query.item_matrix)
        exclude = np.array([0, 1, 2, 3, 4])
        for engine in (ta_topk, classic_ta_topk, batched_ta_topk):
            result = engine(query, lists, 5, exclude=exclude)
            assert not set(result.items) & set(exclude.tolist())
            bf = bruteforce_topk(query, 5, exclude=exclude)
            np.testing.assert_allclose(sorted(result.scores), sorted(bf.scores), atol=1e-12)

    def test_k_exceeding_catalogue(self):
        query = random_query(3, 8, seed=6)
        lists = SortedTopicLists.build(query.item_matrix)
        result = ta_topk(query, lists, 50)
        assert len(result) == 8


class TestEfficiency:
    def test_ta_scores_fewer_items_than_bruteforce(self):
        query = random_query(6, 500, seed=7)
        lists = SortedTopicLists.build(query.item_matrix)
        ta = ta_topk(query, lists, 10)
        assert ta.items_scored < 500

    def test_accounting_fields(self):
        query = random_query(4, 50, seed=8)
        lists = SortedTopicLists.build(query.item_matrix)
        ta = ta_topk(query, lists, 5)
        assert ta.sorted_accesses > 0
        bf = bruteforce_topk(query, 5)
        assert bf.items_scored == 50
        assert bf.sorted_accesses == 0

    def test_concentrated_weights_terminate_early(self):
        """A query concentrated on one topic should stop almost immediately."""
        matrix = np.vstack([np.linspace(1, 0, 200) / 100.5] * 3)
        weights = np.array([1.0, 0.0, 0.0])
        query = QuerySpace(weights=weights, item_matrix=matrix)
        lists = SortedTopicLists.build(matrix)
        result = ta_topk(query, lists, 5)
        assert result.items_scored <= 20


class TestValidation:
    def test_topic_count_mismatch_rejected(self):
        query = random_query(3, 10, seed=9)
        lists = SortedTopicLists.build(random_query(4, 10, seed=9).item_matrix)
        with pytest.raises(ValueError, match="topics"):
            ta_topk(query, lists, 3)

    def test_invalid_k_rejected(self):
        query = random_query(3, 10, seed=9)
        lists = SortedTopicLists.build(query.item_matrix)
        with pytest.raises(ValueError):
            ta_topk(query, lists, 0)


class TestBuildRegression:
    """The vectorised build must reproduce the per-topic lexsort exactly."""

    @staticmethod
    def _reference_build(item_matrix):
        """The original per-topic ``lexsort`` construction."""
        k, v = item_matrix.shape
        ids = np.arange(v)
        order = np.empty((k, v), dtype=np.int64)
        for z in range(k):
            order[z] = np.lexsort((ids, -item_matrix[z]))
        values = np.take_along_axis(item_matrix, order, axis=1)
        return order, values

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_lexsort_loop(self, seed):
        matrix = random_query(7, 90, seed).item_matrix
        expected_order, expected_values = self._reference_build(matrix)
        lists = SortedTopicLists.build(matrix)
        np.testing.assert_array_equal(lists.order, expected_order)
        np.testing.assert_array_equal(lists.values, expected_values)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_lexsort_loop_with_ties(self, seed):
        rng = np.random.default_rng(seed)
        # Quantised weights force many exact ties within every topic row.
        matrix = rng.integers(0, 4, size=(5, 60)).astype(float)
        matrix /= matrix.sum(axis=1, keepdims=True) + 1e-9
        expected_order, expected_values = self._reference_build(matrix)
        lists = SortedTopicLists.build(matrix)
        np.testing.assert_array_equal(lists.order, expected_order)
        np.testing.assert_array_equal(lists.values, expected_values)

    def test_order_dtype_is_int64(self):
        lists = SortedTopicLists.build(random_query(2, 5, seed=0).item_matrix)
        assert lists.order.dtype == np.int64


class TestEdgeCases:
    """TA engines at the catalogue boundary and under heavy score ties."""

    @pytest.mark.parametrize("k", [8, 9, 50])
    def test_k_at_least_catalogue_all_engines(self, k):
        query = random_query(3, 8, seed=11)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, min(k, 8))
        for engine in (ta_topk, classic_ta_topk, batched_ta_topk):
            result = engine(query, lists, k)
            assert len(result) == 8
            assert result.items == bf.items
            np.testing.assert_allclose(
                sorted(result.scores), sorted(bf.scores), atol=1e-12
            )

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_fully_tied_scores_rank_by_item_id(self, k):
        # Uniform matrix + uniform weights: every item scores identically,
        # so the deterministic contract says smallest item ids win.
        matrix = np.full((4, 7), 1.0 / 7)
        query = QuerySpace(weights=np.full(4, 0.25), item_matrix=matrix)
        lists = SortedTopicLists.build(matrix)
        for engine in (ta_topk, classic_ta_topk, batched_ta_topk):
            result = engine(query, lists, k)
            assert result.items == list(range(k))

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [2, 5])
    def test_quantised_ties_match_bruteforce_items(self, seed, k):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 3, size=(3, 20)).astype(float) / 10.0
        query = QuerySpace(weights=np.array([0.5, 0.3, 0.2]), item_matrix=matrix)
        lists = SortedTopicLists.build(matrix)
        bf = bruteforce_topk(query, k)
        for engine in (ta_topk, classic_ta_topk, batched_ta_topk):
            result = engine(query, lists, k)
            assert result.items == bf.items
