"""Tests for the TemporalRecommender facade."""

import numpy as np
import pytest

from repro.core.itcam import ITCAM
from repro.core.ttcam import TTCAM
from repro.recommend.recommender import TemporalRecommender
import tests.conftest as c


@pytest.fixture(scope="module")
def models():
    cuboid, _ = c.generate(c.tiny_config())
    ttcam = TTCAM(4, 3, max_iter=20, seed=0).fit(cuboid)
    itcam = ITCAM(4, max_iter=20, seed=0).fit(cuboid)
    return cuboid, ttcam, itcam


class TestMethods:
    def test_all_engines_agree(self, models):
        cuboid, ttcam, _ = models
        rec = TemporalRecommender(ttcam)
        for user, interval in [(0, 0), (7, 5), (30, 11)]:
            bf = rec.recommend(user, interval, k=8, method="bf")
            for engine in ("ta", "classic-ta", "batched-ta"):
                other = rec.recommend(user, interval, k=8, method=engine)
                np.testing.assert_allclose(
                    sorted(bf.scores), sorted(other.scores), atol=1e-12
                )

    def test_batched_ta_same_items_as_bruteforce(self, models):
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam, method="batched-ta")
        bf = rec.recommend(2, 3, k=10, method="bf")
        bta = rec.recommend(2, 3, k=10)
        assert bta.items == bf.items

    def test_itcam_engines_agree(self, models):
        cuboid, _, itcam = models
        rec = TemporalRecommender(itcam)
        for interval in (0, 3, 9):
            bf = rec.recommend(2, interval, k=6, method="bf")
            ta = rec.recommend(2, interval, k=6, method="ta")
            np.testing.assert_allclose(sorted(bf.scores), sorted(ta.scores), atol=1e-12)

    def test_default_method_used(self, models):
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam, method="bf")
        result = rec.recommend(0, 0, k=3)
        assert result.items_scored == ttcam.params_.num_items

    def test_invalid_method_rejected(self, models):
        _, ttcam, _ = models
        with pytest.raises(ValueError):
            TemporalRecommender(ttcam, method="magic")
        rec = TemporalRecommender(ttcam)
        with pytest.raises(ValueError):
            rec.recommend(0, 0, method="magic")

    def test_exclusion_passthrough(self, models):
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam)
        base = rec.recommend(0, 0, k=5, method="ta")
        excluded = rec.recommend(0, 0, k=5, method="ta", exclude=np.array(base.items))
        assert not set(base.items) & set(excluded.items)


class TestCaching:
    def test_ttcam_uses_one_index(self, models):
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam)
        rec.recommend(0, 0, k=3, method="ta")
        rec.recommend(1, 5, k=3, method="ta")
        assert len(rec.serving_cache.indexes) == 1

    def test_itcam_caches_per_interval(self, models):
        _, _, itcam = models
        rec = TemporalRecommender(itcam)
        rec.recommend(0, 0, k=3, method="ta")
        rec.recommend(0, 1, k=3, method="ta")
        rec.recommend(1, 1, k=3, method="ta")
        assert len(rec.serving_cache.indexes) == 2

    def test_index_cache_alias_removed(self, models):
        # The deprecated `_index_cache` alias from PR 3 is gone; the
        # bounded LRU region is the only index store.
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam)
        assert not hasattr(rec, "_index_cache")

    def test_status_carries_cache_counters(self, models):
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam)
        _, status = rec.recommend_with_status(0, 0, k=3)
        assert status.cache is not None
        assert status.cache.misses >= 1
        _, status = rec.recommend_with_status(1, 0, k=3)
        assert status.cache.hits >= 1

    def test_precompute_ttcam(self, models):
        _, ttcam, _ = models
        rec = TemporalRecommender(ttcam)
        assert rec.precompute() == 1

    def test_precompute_itcam_intervals(self, models):
        _, _, itcam = models
        rec = TemporalRecommender(itcam)
        count = rec.precompute(intervals=np.array([0, 1, 2]))
        assert count == 3
