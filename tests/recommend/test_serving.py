"""Tests for the batch serving engine and the bounded serving caches.

The load-bearing contract: ``recommend_batch`` in float64 mode must be
*exactly* equal — items, scores, tie order — to the per-query TA path,
across mixed intervals, duplicate queries, ``k ≥ V`` and fully tied
rows. Property tests pin that; the rest covers LRU semantics, float32
set stability at the bench scales, per-row degradation and the scratch
hoisting in the threshold engines.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ITCAMParameters, TTCAMParameters
from repro.core.serialize import LoadedModel
from repro.recommend import TemporalRecommender
from repro.recommend.ranking import QuerySpace
from repro.recommend.serving import (
    CacheStats,
    LRUCache,
    ServingCache,
    ServingConfig,
    check_serve_dtype,
    select_candidates,
    value_nbytes,
)
from repro.recommend.threshold import SortedTopicLists, batched_ta_topk, ta_topk
from repro.robustness.errors import ServingUnavailableError


def make_ttcam(rng, num_users=12, num_items=60, num_intervals=5, k1=3, k2=2):
    params = TTCAMParameters(
        theta=rng.dirichlet(np.full(k1, 0.4), size=num_users),
        phi=rng.dirichlet(np.full(num_items, 0.1), size=k1),
        theta_time=rng.dirichlet(np.full(k2, 0.4), size=num_intervals),
        phi_time=rng.dirichlet(np.full(num_items, 0.1), size=k2),
        lambda_u=rng.beta(3.0, 3.0, size=num_users),
    )
    return LoadedModel(params)


def make_itcam(rng, num_users=12, num_items=60, num_intervals=5, k1=3):
    params = ITCAMParameters(
        theta=rng.dirichlet(np.full(k1, 0.4), size=num_users),
        phi=rng.dirichlet(np.full(num_items, 0.1), size=k1),
        theta_time=rng.dirichlet(np.full(num_items, 0.1), size=num_intervals),
        lambda_u=rng.beta(3.0, 3.0, size=num_users),
    )
    return LoadedModel(params)


def assert_batch_matches_per_query(rec, queries, k, dtype="float64", exclude=None):
    """Assert exact equality with ``ta_topk`` and agreement with brute force.

    Versus the TA path the contract is bitwise: same items, same scores,
    same tie order. Brute force computes scores as one GEMV, which
    differs from the engines' per-item dot by ULPs (the reason the batch
    engine rescores instead of trusting its GEMM), so versus ``bf`` the
    assertion is the repo-wide one: same item sets, scores to 1e-12.
    """
    batch = rec.recommend_batch(queries, k=k, dtype=dtype, exclude=exclude)
    for (user, interval), result in zip(queries, batch):
        row_exclude = exclude.get(user) if isinstance(exclude, dict) else exclude
        ta = rec.recommend(user, interval, k=k, method="ta", exclude=row_exclude)
        assert result.items == ta.items, (user, interval)
        assert result.scores == ta.scores, (user, interval)
        bf = rec.recommend(user, interval, k=k, method="bf", exclude=row_exclude)
        assert set(result.items) == set(bf.items), (user, interval)
        np.testing.assert_allclose(result.scores, bf.scores, atol=1e-12)
    return batch


class TestBatchExactness:
    @given(
        seed=st.integers(0, 5_000),
        kind=st.sampled_from(["ttcam", "itcam"]),
        k=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_per_query_exactly(self, seed, kind, k):
        rng = np.random.default_rng(seed)
        num_items = int(rng.integers(30, 90))
        num_intervals = 5
        maker = make_ttcam if kind == "ttcam" else make_itcam
        model = maker(rng, num_items=num_items, num_intervals=num_intervals)
        rec = TemporalRecommender(model)
        queries = [
            (int(rng.integers(0, 12)), int(rng.integers(0, num_intervals)))
            for _ in range(20)
        ]
        queries += [queries[0], queries[7]]  # duplicates, mixed intervals
        assert_batch_matches_per_query(rec, queries, k)

    @given(seed=st.integers(0, 2_000), kind=st.sampled_from(["ttcam", "itcam"]))
    @settings(max_examples=10, deadline=None)
    def test_k_at_least_catalogue(self, seed, kind):
        rng = np.random.default_rng(seed)
        maker = make_ttcam if kind == "ttcam" else make_itcam
        model = maker(rng, num_items=25)
        rec = TemporalRecommender(model)
        queries = [(0, 0), (3, 2), (3, 2)]
        for k in (25, 26, 100):
            assert_batch_matches_per_query(rec, queries, k)

    def test_fully_tied_rows_keep_item_id_order(self):
        rng = np.random.default_rng(0)
        num_items = 40
        # Uniform topic–item columns: every item scores identically, so
        # the tie-break (ascending item id) decides the entire ranking.
        params = TTCAMParameters(
            theta=rng.dirichlet(np.full(3, 0.4), size=6),
            phi=np.full((3, num_items), 1.0 / num_items),
            theta_time=rng.dirichlet(np.full(2, 0.4), size=4),
            phi_time=np.full((2, num_items), 1.0 / num_items),
            lambda_u=rng.beta(3.0, 3.0, size=6),
        )
        rec = TemporalRecommender(LoadedModel(params))
        queries = [(0, 0), (5, 3), (2, 1)]
        batch = assert_batch_matches_per_query(rec, queries, 10)
        for result in batch:
            assert result.items == list(range(10))

    def test_exclusions_global_and_per_user(self):
        rng = np.random.default_rng(7)
        rec = TemporalRecommender(make_ttcam(rng))
        queries = [(u, u % 5) for u in range(12)]
        assert_batch_matches_per_query(
            rec, queries, 5, exclude=np.array([0, 1, 2, 3])
        )
        per_user = {u: np.array([u, (u + 1) % 60, (u + 2) % 60]) for u in range(12)}
        rec2 = TemporalRecommender(make_ttcam(rng))
        assert_batch_matches_per_query(rec2, queries, 5, exclude=per_user)

    def test_rejects_bad_inputs(self):
        rec = TemporalRecommender(make_ttcam(np.random.default_rng(0)))
        with pytest.raises(ValueError):
            rec.recommend_batch([(0, 0)], k=0)
        with pytest.raises(ValueError):
            rec.recommend_batch([(0, 0)], k=5, dtype="int4")
        with pytest.raises(ValueError):
            check_serve_dtype("bfloat16")
        with pytest.raises(ValueError):
            TemporalRecommender(rec.model, serve_dtype="bfloat16")
        # The quantized selection dtypes are valid serving modes now.
        assert check_serve_dtype("float16") == "float16"
        assert check_serve_dtype("int8") == "int8"


class TestFloat32Mode:
    #: The three bench scales: (num_topics, num_items, k).
    BENCH_SCALES = [(16, 5_000, 10), (24, 20_000, 10), (32, 50_000, 20)]

    @pytest.mark.parametrize("num_topics,num_items,k", BENCH_SCALES)
    def test_topk_sets_match_float64(self, num_topics, num_items, k):
        rng = np.random.default_rng(num_items)
        model = make_ttcam(
            rng, num_users=64, num_items=num_items, num_intervals=8, k1=num_topics,
            k2=max(2, num_topics // 2),
        )
        rec = TemporalRecommender(model)
        queries = [
            (int(rng.integers(0, 64)), int(rng.integers(0, 8))) for _ in range(24)
        ]
        f64 = rec.recommend_batch(queries, k=k)
        f32 = rec.recommend_batch(queries, k=k, dtype="float32")
        for r64, r32 in zip(f64, f32):
            assert set(r64.items) == set(r32.items)
            # Rescoring is float64 in both modes, so scores of the common
            # items are bit-identical — the documented contract.
            assert dict(zip(r64.items, r64.scores)) == dict(zip(r32.items, r32.scores))


class TestLRUCache:
    def test_eviction_order_and_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # promotes "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.get("b") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 1)
        assert (stats.size, stats.capacity) == (2, 2)

    def test_peek_does_not_count_or_promote(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        cache.put("c", 3)  # "a" was NOT promoted by peek → evicted
        assert "a" not in cache
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stats_aggregate(self):
        total = CacheStats(hits=3, misses=1) + CacheStats(hits=1, misses=3, capacity=4)
        assert total.hits == 4 and total.misses == 4 and total.capacity == 4
        assert total.hit_rate == 0.5
        assert CacheStats().hit_rate == 0.0


class TestServingCacheEviction:
    def test_evicted_interval_requeried_identically(self):
        rng = np.random.default_rng(11)
        model = make_itcam(rng, num_intervals=6)
        cache = ServingCache(
            index_capacity=2, matrix_capacity=2, context_capacity=2, mask_capacity=2
        )
        rec = TemporalRecommender(model, cache=cache)
        queries = [(u % 12, t) for t in range(6) for u in range(3)]
        first = rec.recommend_batch(queries, k=5)
        assert rec.serving_cache.stats().evictions > 0
        # Interval 0's entries were evicted by the later intervals;
        # re-querying must rebuild and give identical results.
        again = rec.recommend_batch(queries, k=5)
        for a, b in zip(first, again):
            assert a.items == b.items and a.scores == b.scores

    def test_index_region_bounded_for_itcam(self):
        rng = np.random.default_rng(3)
        model = make_itcam(rng, num_intervals=6)
        cache = ServingCache(index_capacity=2)
        rec = TemporalRecommender(model, cache=cache)
        for t in range(6):
            rec.recommend(0, t, k=3, method="ta")
        assert len(rec.serving_cache.indexes) == 2
        assert rec.serving_cache.indexes.evictions == 4


class _ArangeFallback:
    """Fallback stub scoring item v as V - v (so item 0 wins)."""

    name = "arange-fallback"

    def __init__(self, num_items):
        self.num_items = num_items

    def score_items(self, user, interval):
        """Dense descending scores."""
        return np.arange(self.num_items, 0, -1, dtype=np.float64)


class TestPerRowDegradation:
    def test_out_of_range_rows_fall_back_alone(self):
        rng = np.random.default_rng(5)
        model = make_ttcam(rng)
        fallback = _ArangeFallback(60)
        rec = TemporalRecommender(model, fallbacks=[fallback])
        queries = [(0, 0), (999, 0), (3, 2), (0, 999)]
        results, statuses = rec.recommend_batch_with_status(queries, k=4)

        assert not statuses[0].degraded and not statuses[2].degraded
        assert statuses[0].served_by == model.name
        for i in (1, 3):
            assert statuses[i].degraded
            assert statuses[i].served_by == "arange-fallback"
            assert statuses[i].attempted == (model.name,)
            assert "unknown" in statuses[i].reason
            assert results[i].items == [0, 1, 2, 3]
        # Healthy rows are exactly the per-query primary results.
        single = rec.recommend(0, 0, k=4)
        assert results[0].items == single.items and results[0].scores == single.scores
        # Every status carries the same end-of-batch cache snapshot.
        assert all(s.cache == statuses[0].cache for s in statuses)
        assert statuses[0].cache.misses > 0

    def test_unavailable_primary_degrades_every_row(self):
        rec = TemporalRecommender(
            None,
            fallbacks=[_ArangeFallback(30)],
            unavailable_reason="snapshot unusable",
        )
        results, statuses = rec.recommend_batch_with_status([(0, 0), (1, 1)], k=3)
        assert all(s.degraded for s in statuses)
        assert all(s.reason == "snapshot unusable" for s in statuses)
        assert all(r.items == [0, 1, 2] for r in results)

    def test_unservable_row_raises(self):
        rng = np.random.default_rng(5)
        rec = TemporalRecommender(make_ttcam(rng))
        with pytest.raises(ServingUnavailableError):
            rec.recommend_batch([(0, 0), (999, 0)], k=3)


class TestScratchReuse:
    def test_repeated_queries_are_isolated(self):
        rng = np.random.default_rng(2)
        matrix = rng.dirichlet(np.full(50, 0.2), size=4)
        lists = SortedTopicLists.build(matrix)
        query = QuerySpace(weights=rng.dirichlet(np.full(4, 0.4)), item_matrix=matrix)

        base = ta_topk(query, lists, 6)
        excluded = ta_topk(query, lists, 6, exclude=np.array(base.items))
        assert not set(base.items) & set(excluded.items)
        # A third call must not inherit the second call's exclusions.
        again = ta_topk(query, lists, 6)
        assert again.items == base.items and again.scores == base.scores
        # Interleaving engines on the same lists stays correct too.
        batched = batched_ta_topk(query, lists, 6)
        assert batched.items == base.items
        assert ta_topk(query, lists, 6).items == base.items

    def test_scratch_allocated_once(self):
        rng = np.random.default_rng(4)
        matrix = rng.dirichlet(np.full(30, 0.2), size=3)
        lists = SortedTopicLists.build(matrix)
        query = QuerySpace(weights=rng.dirichlet(np.full(3, 0.4)), item_matrix=matrix)
        ta_topk(query, lists, 3)
        scratch = lists.scratch()
        batched_ta_topk(query, lists, 3)
        assert lists.scratch() is scratch


class TestSelectCandidates:
    def test_boundary_ties_all_included(self):
        scores = np.array([[1.0, 0.5, 0.5, 0.5, 0.2]])
        _, mask = select_candidates(scores, 2)
        # The 2nd-largest value (0.5) is tied three ways: all included.
        assert mask[0].tolist() == [True, True, True, True, False]

    def test_count_at_least_items_takes_all(self):
        scores = np.array([[3.0, 1.0], [2.0, 5.0]])
        _, mask = select_candidates(scores, 7)
        assert mask.all()


class TestConcurrentServing:
    def test_threaded_recommenders_sharing_cache_match_serial(self):
        # The documented threading model: one recommender (and therefore
        # one BatchScorer + workspace) per thread, sharing only the
        # locked ServingCache. Threaded results must equal the serial
        # ones exactly, and the shared cache must stay consistent.
        rng = np.random.default_rng(11)
        model = make_ttcam(rng)
        query_sets = [
            [(u, u % 5) for u in range(12)],
            [((u * 5) % 12, (u + 2) % 5) for u in range(12)],
            [(3, 1), (3, 1), (7, 4), (0, 0)],
        ]
        serial = TemporalRecommender(model)
        expected = [serial.recommend_batch(queries, k=5) for queries in query_sets]

        shared = ServingCache()
        recommenders = [
            TemporalRecommender(model, cache=shared) for _ in query_sets
        ]
        outcomes = [None] * len(query_sets)

        def worker(slot):
            batches = [
                recommenders[slot].recommend_batch(query_sets[slot], k=5)
                for _ in range(4)
            ]
            outcomes[slot] = batches

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(query_sets))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for slot, batches in enumerate(outcomes):
            assert batches is not None
            for batch in batches:
                for result, reference in zip(batch, expected[slot]):
                    assert result.items == reference.items
                    assert result.scores == reference.scores


class TestWallClockCeiling:
    def test_tiny_batch_stays_fast(self):
        # Generous tier-1 regression guard: a 128-query batch on a tiny
        # model takes ~10ms; a gross serving slowdown fails loudly here.
        rng = np.random.default_rng(9)
        model = make_ttcam(rng, num_users=50, num_items=200, num_intervals=6, k1=8)
        rec = TemporalRecommender(model)
        queries = [
            (int(rng.integers(0, 50)), int(rng.integers(0, 6))) for _ in range(128)
        ]
        rec.recommend_batch(queries, k=10)  # warm caches and workspaces
        start = time.perf_counter()
        rec.recommend_batch(queries, k=10)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"batch serving took {elapsed:.2f}s on a tiny model"


class TestLRUCacheByteBudget:
    def test_byte_eviction_order_and_counters(self):
        cache = LRUCache(capacity=10, max_bytes=100)
        cache.put("a", np.zeros(5))  # 40 bytes
        cache.put("b", np.zeros(5))  # 80 bytes total
        assert cache.bytes == 80
        cache.put("c", np.zeros(5))  # 120 → evict LRU "a"
        assert cache.peek("a") is None
        assert cache.peek("b") is not None
        stats = cache.stats()
        assert stats.bytes == 80
        assert stats.max_bytes == 100
        assert stats.evictions == 1
        assert stats.evicted_bytes == 40

    def test_replacement_reaccounts_bytes(self):
        cache = LRUCache(capacity=4, max_bytes=1000)
        cache.put("k", np.zeros(10))
        cache.put("k", np.zeros(5))
        assert cache.bytes == 40
        cache.discard("k")
        assert cache.bytes == 0

    def test_oversize_value_never_worth_the_cache(self):
        cache = LRUCache(capacity=4, max_bytes=64)
        cache.put("small", np.zeros(4))  # 32 bytes, fits
        cache.put("big", np.zeros(100))  # 800 bytes, over the whole budget
        assert cache.peek("big") is None
        stats = cache.stats()
        assert stats.bytes <= 64
        assert stats.evicted_bytes >= 800

    def test_clear_resets_bytes(self):
        cache = LRUCache(capacity=4, max_bytes=1000)
        cache.put("a", np.zeros(10))
        cache.clear()
        assert cache.bytes == 0
        assert len(cache) == 0

    def test_default_stays_entry_count_only(self):
        cache = LRUCache(capacity=2)
        cache.put("a", np.zeros(1_000))
        cache.put("b", np.zeros(1_000))
        assert len(cache) == 2  # far over any plausible byte budget
        assert cache.stats().max_bytes == 0
        cache.put("c", np.zeros(1_000))
        assert len(cache) == 2  # the entry bound still evicts

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            LRUCache(capacity=2, max_bytes=0)

    def test_value_nbytes_accounting(self):
        assert value_nbytes(np.zeros(8)) == 64
        assert value_nbytes("not an array") == 0

    def test_serving_cache_budgets_bound_resident_arrays(self):
        cache = ServingCache(context_capacity=64, context_max_bytes=200)
        for interval in range(16):
            cache.contexts.put(("ctx", interval), np.zeros(5))
        assert cache.contexts.bytes <= 200
        assert cache.stats().evicted_bytes > 0


class TestServingConfig:
    def test_build_cache_splits_budget(self):
        cache = ServingConfig(cache_max_bytes=8_000).build_cache()
        assert cache.indexes.max_bytes == 3_000
        assert cache.matrices.max_bytes == 3_000
        assert cache.contexts.max_bytes == 2_000
        assert ServingConfig().build_cache().matrices.max_bytes is None

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="dtype"):
            ServingConfig(select_dtype="int4")
        with pytest.raises(ValueError, match="cache_max_bytes"):
            ServingConfig(cache_max_bytes=0)
        with pytest.raises(ValueError, match="row_block"):
            ServingConfig(row_block=0)

    def test_recommender_honours_config(self):
        rng = np.random.default_rng(13)
        model = make_ttcam(rng)
        config = ServingConfig(select_dtype="int8", cache_max_bytes=1 << 20)
        rec = TemporalRecommender(model, config=config)
        reference = TemporalRecommender(model)
        queries = [(u, u % 5) for u in range(12)]
        batch = rec.recommend_batch(queries, k=5)  # int8 via config default
        expected = reference.recommend_batch(queries, k=5)
        for got, want in zip(batch, expected):
            assert got.items == want.items
            assert got.scores == want.scores
        assert rec.serving_cache.contexts.max_bytes is not None
