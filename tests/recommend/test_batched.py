"""Focused tests for the block-vectorised Threshold Algorithm."""

import numpy as np
import pytest

from repro.recommend.bruteforce import bruteforce_topk
from repro.recommend.ranking import QuerySpace
from repro.recommend.threshold import SortedTopicLists, batched_ta_topk, rank_order_pool


def random_query(num_topics, num_items, seed):
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(num_topics) * 0.3)
    matrix = rng.dirichlet(np.ones(num_items) * 0.1, size=num_topics)
    return QuerySpace(weights=weights, item_matrix=matrix)


class TestRankOrderPool:
    def test_orders_by_score_then_id(self):
        items = np.array([5, 2, 9])
        scores = np.array([0.3, 0.5, 0.5])
        assert rank_order_pool(items, scores, 3) == [(2, 0.5), (9, 0.5), (5, 0.3)]

    def test_truncates_to_k(self):
        items = np.array([0, 1, 2])
        scores = np.array([0.1, 0.2, 0.3])
        assert len(rank_order_pool(items, scores, 2)) == 2

    def test_empty_pool(self):
        assert rank_order_pool(np.array([], dtype=int), np.array([]), 5) == []


class TestBatchedTA:
    def test_tiny_block_forces_pruning_path(self):
        """block=1 with k=1 exercises the candidate-pool pruning branch."""
        query = random_query(4, 200, seed=1)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, 1)
        bta = batched_ta_topk(query, lists, 1, block=1)
        assert bta.items == bf.items

    def test_block_larger_than_catalogue(self):
        query = random_query(3, 10, seed=2)
        lists = SortedTopicLists.build(query.item_matrix)
        bf = bruteforce_topk(query, 4)
        bta = batched_ta_topk(query, lists, 4, block=10_000)
        assert bta.items == bf.items

    def test_k_exceeding_catalogue(self):
        query = random_query(3, 7, seed=3)
        lists = SortedTopicLists.build(query.item_matrix)
        result = batched_ta_topk(query, lists, 50)
        assert len(result) == 7

    def test_all_items_excluded(self):
        query = random_query(2, 5, seed=4)
        lists = SortedTopicLists.build(query.item_matrix)
        result = batched_ta_topk(query, lists, 3, exclude=np.arange(5))
        assert result.items == []

    def test_accounting_counts_blocks(self):
        query = random_query(4, 300, seed=5)
        lists = SortedTopicLists.build(query.item_matrix)
        result = batched_ta_topk(query, lists, 5, block=32)
        assert result.sorted_accesses % 32 == 0 or result.sorted_accesses <= 300 * 4
        assert 0 < result.items_scored <= 300

    def test_scores_are_exact_values(self):
        query = random_query(5, 50, seed=6)
        lists = SortedTopicLists.build(query.item_matrix)
        result = batched_ta_topk(query, lists, 5)
        for rec in result.recommendations:
            assert rec.score == pytest.approx(query.score(rec.item), abs=1e-12)

    def test_skewed_topic_terminates_early(self):
        """A query on one dominant topic should not scan the catalogue."""
        num_items = 2000
        rng = np.random.default_rng(7)
        matrix = rng.dirichlet(np.ones(num_items) * 0.05, size=3)
        weights = np.array([0.98, 0.01, 0.01])
        query = QuerySpace(weights, matrix)
        lists = SortedTopicLists.build(matrix)
        result = batched_ta_topk(query, lists, 10, block=64)
        assert result.items_scored < num_items / 2
