"""Shared fixtures: small, fast synthetic datasets reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RatingCuboid, Rating, generate, holdout_split
from repro.data.synthetic import SyntheticConfig, auto_events


def tiny_config(**overrides) -> SyntheticConfig:
    """A small but structured dataset config for fast model tests."""
    defaults = dict(
        name="tiny",
        num_users=120,
        num_items=80,
        num_intervals=12,
        num_user_topics=4,
        events=auto_events(3, 12, rng_seed=5, width=1.0, num_items=5),
        lambda_alpha=3.0,
        lambda_beta=3.0,
        mean_ratings_per_user=25.0,
        topic_sparsity=0.05,
        popularity_exponent=1.0,
        popularity_offset=5.0,
        popular_leak=0.2,
        noise_fraction=0.1,
        item_lifecycle=3.0,
        seed=3,
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


@pytest.fixture(scope="session")
def tiny_cuboid():
    """Session-shared small cuboid with ground truth."""
    cuboid, truth = generate(tiny_config())
    return cuboid, truth


@pytest.fixture(scope="session")
def tiny_split(tiny_cuboid):
    """Session-shared 80/20 split of the tiny cuboid."""
    cuboid, _ = tiny_cuboid
    return holdout_split(cuboid, seed=1)


@pytest.fixture
def handmade_cuboid():
    """A fully hand-specified cuboid for exact-value assertions.

    Layout (user, interval, item, score):
      u0: (0,0,0,1) (0,0,1,2) (0,1,0,1)
      u1: (1,0,1,1) (1,1,2,3)
      u2: (2,1,2,1)
    Dimensions: N=3, T=2, V=3.
    """
    return RatingCuboid.from_arrays(
        users=[0, 0, 0, 1, 1, 2],
        intervals=[0, 0, 1, 0, 1, 1],
        items=[0, 1, 0, 1, 2, 2],
        scores=[1.0, 2.0, 1.0, 1.0, 3.0, 1.0],
        num_users=3,
        num_intervals=2,
        num_items=3,
    )


@pytest.fixture
def simple_ratings():
    """Small list of labelled Rating records."""
    return [
        Rating("alice", 0, "pizza", 1.0),
        Rating("alice", 0, "sushi", 2.0),
        Rating("alice", 1, "pizza", 1.0),
        Rating("bob", 0, "sushi", 1.0),
        Rating("bob", 1, "tacos", 3.0),
        Rating("carol", 1, "tacos", 1.0),
    ]


@pytest.fixture
def rng():
    return np.random.default_rng(42)
