"""Fixture corpus for the lifecycle auditor (``repro.tooling.lifecycle``).

Mirrors ``test_lint.py``/``test_races.py``: every rule gets snippets it
must *flag*, snippets where ``# tcam-lint: disable=...`` *suppresses*
the finding, and *clean* snippets encoding the blessed idioms the real
tree uses (with blocks, try/finally releases, constructor rollback,
owner classes that verifiably release their attributes, fsync-before-
rename publishes). The meta-test at the bottom runs the auditor over
the actual ``src/repro`` tree *and* ``benchmarks/perf`` and requires
zero findings — the same gate ``make audit`` and CI enforce.

The cross-check tests at the end close the loop between the static rule
and the runtime failure it predicts: a TCAM021-violating writer is
executed under :class:`repro.robustness.faults.FaultInjector` write
faults and demonstrably publishes corrupt data, while the compliant
writer survives the same faults bit-exactly.
"""

from __future__ import annotations

import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.robustness.errors import InjectedFault
from repro.robustness.faults import FaultInjector, faulty_write
from repro.tooling.lifecycle import RULES, audit_paths, audit_source, main
from repro.tooling.output import filter_findings, parse_codes, render_json

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Path that puts a fixture inside the TCAM021/022 durability scope.
DURABLE_PATH = "src/repro/streaming/publisher.py"
#: Durable module whose contract additionally requires directory fsync.
DIR_FSYNC_PATH = "src/repro/recommend/paramstore.py"


def rules_of(source: str, path: str = "fixture.py") -> list[str]:
    """Audit a dedented snippet and return the rule codes found."""
    return [f.rule for f in audit_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# TCAM020 — resource leak
# ---------------------------------------------------------------------------

TCAM020_FLAGGED = [
    # bound handle never released on any path
    """
    def read_header(path):
        handle = open(path, "rb")
        return handle.read(16).hex()
    """,
    # opened-and-discarded temporary
    """
    def peek(path):
        data = open(path, "rb").read()
        return data
    """,
    # socket acquired, then a fallible constructor step before any owner exists
    """
    import socket

    class Client:
        def __init__(self, host, port):
            self._sock = socket.create_connection((host, port))
            self._file = self._sock.makefile("rb")

        def close(self):
            self._file.close()
            self._sock.close()
    """,
    # stored on self, but no method of the class ever releases it
    """
    class Tail:
        def __init__(self, path):
            self._handle = path.open("ab")

        def append(self, data):
            self._handle.write(data)
    """,
    # pipe ends leak when the spawn between them raises
    """
    from multiprocessing import get_context

    class Handle:
        def __init__(self, target):
            ctx = get_context("spawn")
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            self.conn = parent_conn
            self.process = ctx.Process(target=target, args=(child_conn,))
            self.process.start()
            child_conn.close()

        def shutdown(self):
            self.process.join()
            self.conn.close()
    """,
]

TCAM020_SUPPRESSED = [
    """
    def read_header(path):
        handle = open(path, "rb")  # tcam-lint: disable=TCAM020
        return handle.read(16).hex()
    """,
]

TCAM020_CLEAN = [
    # with block
    """
    def read_header(path):
        with open(path, "rb") as handle:
            return handle.read(16).hex()
    """,
    # try/finally release
    """
    import os

    def fsync_dir(directory):
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    """,
    # constructor rollback: the except handler releases, so the fallible
    # step between acquisition and ownership is protected
    """
    import socket

    class Client:
        def __init__(self, host, port):
            self._sock = socket.create_connection((host, port))
            try:
                self._file = self._sock.makefile("rb")
            except Exception:
                self._sock.close()
                raise

        def close(self):
            self._file.close()
            self._sock.close()
    """,
    # escape to an owner class that verifiably releases the attribute
    """
    class Tail:
        def __init__(self, path):
            self._handle = path.open("ab")

        def close(self):
            self._handle.close()
    """,
    # escape by return: the caller owns it now
    """
    def open_log(path):
        return open(path, "ab")
    """,
    # handed to another callable (an ExitStack, a registry, ...)
    """
    def register(stack, path):
        handle = open(path, "rb")
        stack.enter_context(handle)
        return stack
    """,
]


@pytest.mark.parametrize("source", TCAM020_FLAGGED)
def test_tcam020_flagged(source):
    assert "TCAM020" in rules_of(source)


@pytest.mark.parametrize("source", TCAM020_SUPPRESSED)
def test_tcam020_suppressed(source):
    assert rules_of(source) == []


@pytest.mark.parametrize("source", TCAM020_CLEAN)
def test_tcam020_clean(source):
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM021 — atomic-publish protocol
# ---------------------------------------------------------------------------

TCAM021_FLAGGED = [
    # rename without any fsync: a crash can publish a truncated file
    """
    import json
    import os

    def publish(path, payload):
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
    """,
    # os.rename variant
    """
    import os

    def publish(tmp, final):
        os.rename(tmp, final)
    """,
]

TCAM021_SUPPRESSED = [
    """
    import os

    def publish(tmp, final):
        os.rename(tmp, final)  # tcam-lint: disable=TCAM021
    """,
]

TCAM021_CLEAN = [
    # the blessed protocol: write temp, flush, fsync, replace
    """
    import json
    import os

    def publish(path, payload):
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    """,
]


@pytest.mark.parametrize("source", TCAM021_FLAGGED)
def test_tcam021_flagged(source):
    assert "TCAM021" in rules_of(source, DURABLE_PATH)


@pytest.mark.parametrize("source", TCAM021_SUPPRESSED)
def test_tcam021_suppressed(source):
    assert rules_of(source, DURABLE_PATH) == []


@pytest.mark.parametrize("source", TCAM021_CLEAN)
def test_tcam021_clean(source):
    assert rules_of(source, DURABLE_PATH) == []


def test_tcam021_scoped_to_durable_modules():
    """The same rename is no finding outside the durability scope."""
    assert rules_of(TCAM021_FLAGGED[0], "src/repro/data/generate.py") == []


def test_tcam021_directory_fsync_contract():
    """paramstore's contract also requires fsyncing after the rename."""
    source = """
    import os

    def _fsync_dir(path):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def publish(tmp, final, handle):
        handle.flush()
        os.fsync(handle.fileno())
        os.rename(tmp, final)
    """
    found = rules_of(source, DIR_FSYNC_PATH)
    assert found == ["TCAM021"]  # fsynced before, but no directory fsync after

    compliant = source + "    _fsync_dir(final)\n"
    assert rules_of(compliant, DIR_FSYNC_PATH) == []


# ---------------------------------------------------------------------------
# TCAM022 — commit-record ordering
# ---------------------------------------------------------------------------

TCAM022_FLAGGED = [
    # manifest written before any payload fsync
    """
    import json
    import os

    def write_store(tmp, manifest, payload_handle):
        manifest_path = tmp / "manifest.json"
        with open(manifest_path, "w") as text:
            json.dump(manifest, text)
        payload_handle.flush()
        os.fsync(payload_handle.fileno())
    """,
    # write_text form, checksum token
    """
    def commit(checksum_path, digest):
        checksum_path.write_text(digest)
    """,
]

TCAM022_SUPPRESSED = [
    """
    def commit(checksum_path, digest):
        checksum_path.write_text(digest)  # tcam-lint: disable=TCAM022
    """,
]

TCAM022_CLEAN = [
    # payload fsynced first, manifest last — the write_store protocol
    """
    import json
    import os

    def write_store(tmp, manifest, payload_handle):
        payload_handle.flush()
        os.fsync(payload_handle.fileno())
        manifest_path = tmp / "manifest.json"
        with open(manifest_path, "w") as text:
            json.dump(manifest, text)
            text.flush()
            os.fsync(text.fileno())
    """,
    # reading a manifest back carries no ordering obligation
    """
    import json

    def load_manifest(manifest_path):
        with open(manifest_path, "r") as text:
            return json.load(text)
    """,
]


@pytest.mark.parametrize("source", TCAM022_FLAGGED)
def test_tcam022_flagged(source):
    assert "TCAM022" in rules_of(source, DURABLE_PATH)


@pytest.mark.parametrize("source", TCAM022_SUPPRESSED)
def test_tcam022_suppressed(source):
    assert rules_of(source, DURABLE_PATH) == []


@pytest.mark.parametrize("source", TCAM022_CLEAN)
def test_tcam022_clean(source):
    assert rules_of(source, DURABLE_PATH) == []


# ---------------------------------------------------------------------------
# TCAM023 — shared-memory unlink ownership
# ---------------------------------------------------------------------------

TCAM023_FLAGGED = [
    # attacher (name=..., no create=True) must not unlink
    """
    from multiprocessing import shared_memory

    def attach_and_drop(manifest):
        segment = shared_memory.SharedMemory(name=manifest["segment"])
        segment.close()
        segment.unlink()
    """,
    # attach-origin attribute unlinked in a class method
    """
    from multiprocessing import shared_memory

    class Store:
        def __init__(self, manifest):
            self._segment = shared_memory.SharedMemory(name=manifest["segment"])

        def close(self):
            self._segment.close()
            self._segment.unlink()
    """,
    # attach-helper origin is tracked through the local binding
    """
    def drop(manifest):
        segment, arrays = attach_arrays(manifest)
        segment.unlink()
    """,
]

TCAM023_SUPPRESSED = [
    """
    from multiprocessing import shared_memory

    def attach_and_drop(manifest):
        segment = shared_memory.SharedMemory(name=manifest["segment"])
        segment.close()
        segment.unlink()  # tcam-lint: disable=TCAM023
    """,
]

TCAM023_CLEAN = [
    # the creating side owns the unlink
    """
    from multiprocessing import shared_memory

    class Snapshot:
        def __init__(self, nbytes):
            self._segment = shared_memory.SharedMemory(create=True, size=nbytes)

        def close(self):
            self._segment.close()
            self._segment.unlink()
    """,
    # attacher that only closes
    """
    from multiprocessing import shared_memory

    class Store:
        def __init__(self, manifest):
            self._segment = shared_memory.SharedMemory(name=manifest["segment"])

        def close(self):
            self._segment.close()
    """,
]


@pytest.mark.parametrize("source", TCAM023_FLAGGED)
def test_tcam023_flagged(source):
    assert "TCAM023" in rules_of(source)


@pytest.mark.parametrize("source", TCAM023_SUPPRESSED)
def test_tcam023_suppressed(source):
    assert "TCAM023" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM023_CLEAN)
def test_tcam023_clean(source):
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM024 — process lifecycle
# ---------------------------------------------------------------------------

TCAM024_FLAGGED = [
    # started but never joined, and never handed to an owner
    """
    from multiprocessing import get_context

    def fire_and_forget(target):
        ctx = get_context("spawn")
        proc = ctx.Process(target=target)
        proc.start()
    """,
    # killed but never reaped: zombie + open pipes
    """
    import subprocess
    import sys

    class Runner:
        def __init__(self, argv):
            self.proc = subprocess.Popen([sys.executable, *argv])

        def abort(self):
            self.proc.kill()
            raise RuntimeError("aborted")

        def drain(self):
            self.proc.communicate()
    """,
]

TCAM024_SUPPRESSED = [
    """
    from multiprocessing import get_context

    def fire_and_forget(target):
        ctx = get_context("spawn")
        proc = ctx.Process(target=target)  # tcam-lint: disable=TCAM024
        proc.start()
    """,
]

TCAM024_CLEAN = [
    # started and joined inline
    """
    from multiprocessing import get_context

    def run(target):
        ctx = get_context("spawn")
        proc = ctx.Process(target=target)
        proc.start()
        proc.join()
        return proc.exitcode
    """,
    # constructed but never started: no OS resource exists
    """
    from multiprocessing import get_context

    def prepare(target):
        ctx = get_context("spawn")
        proc = ctx.Process(target=target)
        return proc
    """,
    # killed, then reaped
    """
    import subprocess
    import sys

    class Runner:
        def __init__(self, argv):
            self.proc = subprocess.Popen([sys.executable, *argv])

        def abort(self):
            self.proc.kill()
            self.proc.communicate()
            raise RuntimeError("aborted")

        def drain(self):
            self.proc.communicate()
    """,
    # owner class reaps in shutdown(): terminate is followed by join
    """
    from multiprocessing import get_context

    class Handle:
        def __init__(self, target):
            ctx = get_context("spawn")
            self.process = ctx.Process(target=target)
            self.process.start()

        def shutdown(self, timeout=5.0):
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join()
    """,
]


@pytest.mark.parametrize("source", TCAM024_FLAGGED)
def test_tcam024_flagged(source):
    assert "TCAM024" in rules_of(source)


@pytest.mark.parametrize("source", TCAM024_SUPPRESSED)
def test_tcam024_suppressed(source):
    assert "TCAM024" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM024_CLEAN)
def test_tcam024_clean(source):
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM025 — mmap use-after-close
# ---------------------------------------------------------------------------

TCAM025_FLAGGED = [
    # view used after the store is closed
    """
    def topic_row(directory, key):
        store = ParamStore(directory)
        row = store.item_topic(key)
        store.close()
        return row.sum()
    """,
    # returning a view out of the finally that closes the store
    """
    def topic_row(directory, key):
        store = ParamStore(directory)
        try:
            row = store.item_topic(key)
            return row
        finally:
            store.close()
    """,
    # np.load(mmap_mode=...) archive subscript escaping a closing with
    """
    import numpy as np
    from contextlib import closing

    def load_theta(path):
        archive = np.load(path, mmap_mode="r")
        with closing(archive):
            theta = archive["theta"]
            return theta
    """,
]

TCAM025_SUPPRESSED = [
    """
    def topic_row(directory, key):
        store = ParamStore(directory)
        row = store.item_topic(key)
        store.close()
        return row.sum()  # tcam-lint: disable=TCAM025
    """,
]

TCAM025_CLEAN = [
    # copy before close
    """
    import numpy as np

    def topic_row(directory, key):
        store = ParamStore(directory)
        try:
            return np.array(store.item_topic(key))
        finally:
            store.close()
    """,
    # store outlives the function: attached to a model, never closed here
    """
    def attach(directory, model):
        store = ParamStore(directory)
        model.param_store = store
        return model
    """,
    # plain np.load without mmap is not a store
    """
    import numpy as np

    def load_theta(path):
        archive = np.load(path)
        theta = archive["theta"]
        archive.close()
        return theta
    """,
]


@pytest.mark.parametrize("source", TCAM025_FLAGGED)
def test_tcam025_flagged(source):
    assert "TCAM025" in rules_of(source)


@pytest.mark.parametrize("source", TCAM025_SUPPRESSED)
def test_tcam025_suppressed(source):
    assert "TCAM025" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM025_CLEAN)
def test_tcam025_clean(source):
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# CLI surface: rule catalogue, JSON schema, filters
# ---------------------------------------------------------------------------


def test_rule_catalogue_is_complete():
    assert sorted(RULES) == [
        "TCAM020",
        "TCAM021",
        "TCAM022",
        "TCAM023",
        "TCAM024",
        "TCAM025",
    ]


def test_audit_paths_walks_directories(tmp_path):
    (tmp_path / "dirty.py").write_text(
        "def f(p):\n    h = open(p)\n    return h.read()\n", encoding="utf-8"
    )
    sub = tmp_path / "nested"
    sub.mkdir()
    (sub / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    findings = audit_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["TCAM020"]
    assert findings[0].path.endswith("dirty.py")


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(p):\n    h = open(p)\n    return h.read()\n", encoding="utf-8")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "TCAM020" in out.out

    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(clean)]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_parse_codes():
    assert parse_codes(" tcam020, TCAM021 ,") == {"TCAM020", "TCAM021"}
    assert parse_codes("") == frozenset()


def test_filter_findings_select_and_ignore(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        textwrap.dedent(
            """
            from multiprocessing import get_context

            def leak_both(p, target):
                h = open(p)
                ctx = get_context("spawn")
                proc = ctx.Process(target=target)
                proc.start()
                return h
            """
        ).lstrip(),
        encoding="utf-8",
    )
    findings = audit_paths([str(dirty)])
    codes = {f.rule for f in findings}
    assert codes == {"TCAM024"}  # h escapes by return; proc never joined
    assert filter_findings(findings, select="TCAM020") == []
    assert [f.rule for f in filter_findings(findings, ignore="TCAM024")] == []
    assert [f.rule for f in filter_findings(findings, select="TCAM024")] == ["TCAM024"]


def test_json_schema_is_shared_and_stable(tmp_path, capsys):
    """All three tools emit the same stable-sorted JSON schema."""
    from repro.tooling.lint import main as lint_main
    from repro.tooling.races import main as races_main

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "import numpy as np\n"
        "x = np.random.rand()\n"
        "def f(p):\n    h = open(p)\n    return h.read()\n",
        encoding="utf-8",
    )
    payloads = []
    for tool in (lint_main, main, races_main):
        assert tool([str(dirty), "--format", "json"]) in (0, 1)
        payloads.append(json.loads(capsys.readouterr().out))
    assert [f["rule"] for f in payloads[0]] == ["TCAM001"]
    assert [f["rule"] for f in payloads[1]] == ["TCAM020"]
    assert payloads[2] == []
    for payload in payloads:
        for finding in payload:
            assert sorted(finding) == ["col", "line", "message", "path", "rule"]
    # stable sort: two runs serialize identically
    assert main([str(dirty), "--format", "json"]) == 1
    first = capsys.readouterr().out
    assert main([str(dirty), "--format", "json"]) == 1
    assert capsys.readouterr().out == first


def test_render_json_sorts_by_path_line_rule():
    from repro.tooling.lint import Finding

    unsorted = [
        Finding("b.py", 2, 0, "TCAM021", "later"),
        Finding("a.py", 9, 4, "TCAM020", "earlier path"),
        Finding("b.py", 2, 0, "TCAM020", "same line, lower rule"),
    ]
    payload = json.loads(render_json(unsorted))
    assert [(f["path"], f["line"], f["rule"]) for f in payload] == [
        ("a.py", 9, "TCAM020"),
        ("b.py", 2, "TCAM020"),
        ("b.py", 2, "TCAM021"),
    ]


# ---------------------------------------------------------------------------
# Meta-test: the real tree must be audit-clean
# ---------------------------------------------------------------------------


def test_real_tree_is_audit_clean():
    """The gate CI enforces: zero findings across src/repro + benchmarks."""
    src = REPO_ROOT / "src" / "repro"
    bench = REPO_ROOT / "benchmarks" / "perf"
    assert src.is_dir(), f"expected source tree at {src}"
    findings = audit_paths([str(src), str(bench)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"tcam audit found violations:\n{rendered}"


# ---------------------------------------------------------------------------
# Cross-check: the static rule predicts a real data-loss mode
# ---------------------------------------------------------------------------

#: Writer that tcam audit flags (TCAM021): no fsync, and the faulty_write
#: return value is ignored, so a short write publishes a truncated file.
VIOLATING_WRITER = """
import os

from repro.robustness.faults import faulty_write


def publish(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        faulty_write("fixture.publish", handle, payload)
    os.replace(tmp, path)
"""

#: The blessed protocol: loop until every byte is written, flush, fsync,
#: then rename. tcam audit accepts it and the faults cannot corrupt it.
COMPLIANT_WRITER = """
import os

from repro.robustness.faults import faulty_write


def publish(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        written = 0
        while written < len(payload):
            written += faulty_write("fixture.publish", handle, payload[written:])
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
"""

PAYLOAD = b'{"generation": 7, "snapshot": "model-0007.npz"}'


def _load_publisher(source: str):
    """Execute fixture source so the analyzed code is the executed code."""
    namespace: dict[str, object] = {}
    exec(compile(textwrap.dedent(source), "fixture", "exec"), namespace)
    return namespace["publish"]


@pytest.mark.faults
def test_tcam021_violating_writer_is_flagged_and_loses_data(tmp_path):
    # Static side: the auditor flags exactly this writer.
    assert "TCAM021" in rules_of(VIOLATING_WRITER, DURABLE_PATH)

    # Runtime side: under a short write the violating writer publishes a
    # truncated commit record — the data loss the rule predicts.
    publish = _load_publisher(VIOLATING_WRITER)
    target = tmp_path / "generation.json"
    with FaultInjector(seed=3) as chaos:
        chaos.short_write("fixture.publish", keep_fraction=0.5)
        publish(target, PAYLOAD)
        assert chaos.fired == 1
    published = target.read_bytes()
    assert published != PAYLOAD
    assert len(published) < len(PAYLOAD)


@pytest.mark.faults
def test_tcam021_compliant_writer_is_clean_and_survives_faults(tmp_path):
    # Static side: the auditor accepts the blessed protocol.
    assert rules_of(COMPLIANT_WRITER, DURABLE_PATH) == []

    publish = _load_publisher(COMPLIANT_WRITER)
    target = tmp_path / "generation.json"

    # A short write is invisible: the write loop finishes the job.
    with FaultInjector(seed=3) as chaos:
        chaos.short_write("fixture.publish", keep_fraction=0.5)
        publish(target, PAYLOAD)
        assert chaos.fired == 1
    assert target.read_bytes() == PAYLOAD

    # A torn write (crash mid-write) aborts before the rename, so the
    # previously published record survives bit-exactly.
    with FaultInjector(seed=3) as chaos:
        chaos.torn_write("fixture.publish", keep_fraction=0.5)
        with pytest.raises(InjectedFault):
            publish(target, b"corrupted-next-generation")
        assert chaos.fired == 1
    assert target.read_bytes() == PAYLOAD


@pytest.mark.faults
def test_disk_full_never_corrupts_the_published_record(tmp_path):
    """ENOSPC before any byte lands: both writers abort pre-rename."""
    for source in (VIOLATING_WRITER, COMPLIANT_WRITER):
        publish = _load_publisher(source)
        target = tmp_path / "generation.json"
        publish(target, PAYLOAD)  # no faults armed: baseline publish
        with FaultInjector(seed=5) as chaos:
            chaos.disk_full("fixture.publish")
            with pytest.raises(OSError):
                publish(target, b"next")
        assert target.read_bytes() == PAYLOAD


def test_sanity_faulty_write_passthrough(tmp_path):
    """Unarmed faulty_write is exactly handle.write (fixture assumption)."""
    target = tmp_path / "plain.bin"
    with open(target, "wb") as handle:
        assert faulty_write("fixture.publish", handle, b"abc") == 3
    assert target.read_bytes() == b"abc"
