"""Fixture corpus for the concurrency-race analyzer (``repro.tooling.races``).

Mirrors ``test_lint.py``: every rule gets snippets it must *flag*,
snippets where ``# tcam-lint: disable=...`` *suppresses* the finding,
and *clean* snippets encoding the blessed concurrency idioms the real
tree uses (per-worker buffer slots, locked caches, fixed-order
reduction). The meta-test at the bottom runs the analyzer over the
actual ``src/repro`` tree and requires zero findings — the same gate
``make analyze`` and CI enforce.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.tooling.races import RULES, analyze_paths, analyze_source, main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Path that puts a fixture inside the TCAM012 serving scope.
SERVING_PATH = "src/repro/recommend/serving.py"


def rules_of(source: str, path: str = "fixture.py") -> list[str]:
    """Analyze a dedented snippet and return the rule codes found."""
    return [f.rule for f in analyze_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# TCAM010 — write to shared state from a pooled worker
# ---------------------------------------------------------------------------

TCAM010_FLAGGED = [
    # worker accumulates into a bound-instance attribute
    """
    from concurrent.futures import ThreadPoolExecutor

    class Engine:
        def run(self, n):
            with ThreadPoolExecutor() as pool:
                futures = [pool.submit(self._worker, w) for w in range(n)]
            return [f.result() for f in futures]

        def _worker(self, worker):
            self.total += worker
    """,
    # worker stores into a module-global dict under a non-unique key
    """
    from concurrent.futures import ThreadPoolExecutor

    RESULTS = {}

    def worker(item):
        RESULTS[item] = item * 2

    def run(pool, items):
        for item in items:
            pool.submit(worker, item)
    """,
    # the write is buried one call below the submitted callable
    """
    from concurrent.futures import ThreadPoolExecutor

    class Engine:
        def run(self, n):
            with ThreadPoolExecutor() as pool:
                for w in range(n):
                    pool.submit(self._worker, w)

        def _worker(self, w):
            self._bump()

        def _bump(self):
            self.counter += 1
    """,
    # np.add with a shared out= target still races, numpy or not
    """
    from concurrent.futures import ThreadPoolExecutor
    import numpy as np

    TOTAL = np.zeros(4)

    def worker(w, chunks):
        np.add(TOTAL, chunks[w], out=TOTAL)

    def run(pool, n, chunks):
        for w in range(n):
            pool.submit(worker, w, chunks)
    """,
]

TCAM010_CLEAN = [
    # the engine idiom: every write lands in the worker's own slot
    """
    from concurrent.futures import ThreadPoolExecutor

    def fill(worker, stats):
        stats[worker].fill(0.0)
        stats[worker][0] = float(worker)

    def run(n, stats):
        with ThreadPoolExecutor() as pool:
            for worker in range(n):
                pool.submit(fill, worker, stats)
    """,
    # numpy ufunc calls do not mutate the np module itself
    """
    from concurrent.futures import ThreadPoolExecutor
    import numpy as np

    def worker(worker, workspaces):
        ws = workspaces[worker]
        np.add(ws, 1.0, out=ws)

    def run(pool, n, workspaces):
        for worker in range(n):
            pool.submit(worker_fn, worker, workspaces)

    worker_fn = worker
    """,
    # worker-local accumulation then a return is the blessed reduce shape
    """
    from concurrent.futures import ThreadPoolExecutor

    def worker(worker, blocks):
        total = 0.0
        for lo, hi in blocks[worker]:
            total += float(hi - lo)
        return total

    def run(n, blocks):
        with ThreadPoolExecutor() as pool:
            futures = [pool.submit(worker, w, blocks) for w in range(n)]
        return sum(f.result() for f in futures)
    """,
]


@pytest.mark.parametrize("source", TCAM010_FLAGGED)
def test_tcam010_flags_shared_worker_writes(source):
    assert "TCAM010" in rules_of(source)


@pytest.mark.parametrize("source", TCAM010_CLEAN)
def test_tcam010_accepts_disjoint_slot_writes(source):
    assert "TCAM010" not in rules_of(source)


def test_tcam010_suppressible():
    source = """
    from concurrent.futures import ThreadPoolExecutor

    class Engine:
        def run(self, n):
            with ThreadPoolExecutor() as pool:
                for w in range(n):
                    pool.submit(self._worker, w)

        def _worker(self, worker):
            self.total += worker  # tcam-lint: disable=TCAM010
    """
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM011 — aliasing buffers handed to workers
# ---------------------------------------------------------------------------

TCAM011_FLAGGED = [
    # every worker mutates the one buffer they were all handed
    """
    from concurrent.futures import ThreadPoolExecutor

    def worker(w, buf):
        buf.fill(0.0)

    def run(n, shared):
        with ThreadPoolExecutor() as pool:
            for w in range(n):
                pool.submit(worker, w, shared)
    """,
    # [buf] * n replicates one object across all slots
    """
    from concurrent.futures import ThreadPoolExecutor
    import numpy as np

    def run(n, fn):
        buf = np.zeros(4)
        buffers = [buf] * n
        with ThreadPoolExecutor() as pool:
            for w in range(n):
                pool.submit(fn, w, buffers)
    """,
    # a comprehension replaying one outer name aliases the same way
    """
    from concurrent.futures import ThreadPoolExecutor
    import numpy as np

    def run(n, fn):
        buf = np.zeros(4)
        buffers = [buf for _ in range(n)]
        with ThreadPoolExecutor() as pool:
            for w in range(n):
                pool.submit(fn, w, buffers)
    """,
]

TCAM011_CLEAN = [
    # fresh allocation per slot is the blessed construction
    """
    from concurrent.futures import ThreadPoolExecutor
    import numpy as np

    def worker(w, buffers):
        buffers[w].fill(0.0)

    def run(n):
        buffers = [np.zeros(4) for _ in range(n)]
        with ThreadPoolExecutor() as pool:
            for w in range(n):
                pool.submit(worker, w, buffers)
    """,
    # comprehension over the generator's own variable is not replication
    """
    from concurrent.futures import ThreadPoolExecutor

    def run(items, fn):
        copies = [item for item in items]
        with ThreadPoolExecutor() as pool:
            for item in copies:
                pool.submit(fn, item)
    """,
    # [0.0] * n is a literal fill, not object replication
    """
    from concurrent.futures import ThreadPoolExecutor

    def run(n, fn):
        totals = [0.0] * n
        with ThreadPoolExecutor() as pool:
            for w in range(n):
                pool.submit(fn, w, totals)
    """,
]


@pytest.mark.parametrize("source", TCAM011_FLAGGED)
def test_tcam011_flags_aliasing_buffers(source):
    assert "TCAM011" in rules_of(source)


@pytest.mark.parametrize("source", TCAM011_CLEAN)
def test_tcam011_accepts_per_worker_allocation(source):
    assert "TCAM011" not in rules_of(source)


def test_tcam011_replication_only_checked_in_pool_modules():
    # Without any pool machinery in the module, [buf] * n is fine (it is
    # a single-threaded convenience, not a worker buffer list).
    source = """
    import numpy as np

    def tile(n):
        buf = np.zeros(4)
        return [buf] * n
    """
    assert rules_of(source) == []


def test_tcam011_suppressible():
    source = """
    from concurrent.futures import ThreadPoolExecutor
    import numpy as np

    def run(n, fn):
        buf = np.zeros(4)
        buffers = [buf] * n  # tcam-lint: disable=TCAM011
        with ThreadPoolExecutor() as pool:
            for w in range(n):
                pool.submit(fn, w, buffers)
    """
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM012 — unlocked serving-cache mutation
# ---------------------------------------------------------------------------

TCAM012_FLAGGED = [
    # bare subscript store on shared instance state
    """
    class Cache:
        \"\"\"A serving cache.\"\"\"

        def put(self, key, value):
            self._entries[key] = value
    """,
    # dict mutator call without the lock
    """
    class Cache:
        \"\"\"A serving cache.\"\"\"

        def evict(self, key):
            self._entries.pop(key, None)
    """,
    # augmented counter update races the same way
    """
    class Cache:
        \"\"\"A serving cache.\"\"\"

        def touch(self):
            self.hits += 1
    """,
]

TCAM012_CLEAN = [
    # mutation under the instance lock
    """
    class Cache:
        \"\"\"A serving cache.\"\"\"

        def put(self, key, value):
            with self._lock:
                self._entries[key] = value
    """,
    # a documented single-writer contract on the class opts out
    """
    class Workspace:
        \"\"\"Per-scorer scratch. Not safe for concurrent use.\"\"\"

        def reset(self):
            self._entries["rows"] = 0
    """,
    # __init__ happens-before any sharing
    """
    class Cache:
        \"\"\"A serving cache.\"\"\"

        def __init__(self):
            self._entries = {}
            self._entries["seed"] = 1
    """,
]


@pytest.mark.parametrize("source", TCAM012_FLAGGED)
def test_tcam012_flags_unlocked_cache_mutation(source):
    assert "TCAM012" in rules_of(source, SERVING_PATH)


@pytest.mark.parametrize("source", TCAM012_CLEAN)
def test_tcam012_accepts_locked_or_documented_writes(source):
    assert "TCAM012" not in rules_of(source, SERVING_PATH)


@pytest.mark.parametrize("source", TCAM012_FLAGGED)
def test_tcam012_scoped_to_serving_paths(source):
    # The same mutation outside the serving layer is TCAM010/011
    # territory (needs a pool) — TCAM012 itself must stay silent.
    assert rules_of(source, "src/repro/core/engine.py") == []


def test_tcam012_suppressible():
    source = """
    class Cache:
        \"\"\"A serving cache.\"\"\"

        def put(self, key, value):
            self._entries[key] = value  # tcam-lint: disable=TCAM012
    """
    assert rules_of(source, SERVING_PATH) == []


# ---------------------------------------------------------------------------
# TCAM013 — completion-order reduction
# ---------------------------------------------------------------------------

TCAM013_FLAGGED = [
    """
    from concurrent.futures import as_completed

    def reduce_results(futures):
        total = 0.0
        for fut in as_completed(futures):
            total += fut.result()
        return total
    """,
    """
    from concurrent import futures

    def collect(pending):
        results = []
        for fut in futures.as_completed(pending):
            results.append(fut.result())
        return results
    """,
    """
    from concurrent.futures import as_completed

    def gather(pending):
        return [f.result() for f in as_completed(pending)]
    """,
]

TCAM013_CLEAN = [
    # submission-order collection then fixed-order fold
    """
    def reduce_results(futures):
        partials = [f.result() for f in futures]
        total = 0.0
        for value in partials:
            total += value
        return total
    """,
    # as_completed purely for progress (no accumulation) is fine
    """
    from concurrent.futures import as_completed

    def wait_all(futures):
        for fut in as_completed(futures):
            fut.result()
    """,
]


@pytest.mark.parametrize("source", TCAM013_FLAGGED)
def test_tcam013_flags_completion_order_reduction(source):
    assert "TCAM013" in rules_of(source)


@pytest.mark.parametrize("source", TCAM013_CLEAN)
def test_tcam013_accepts_fixed_order_reduction(source):
    assert "TCAM013" not in rules_of(source)


def test_tcam013_suppressible():
    source = """
    from concurrent.futures import as_completed

    def reduce_results(futures):
        total = 0.0
        for fut in as_completed(futures):  # tcam-lint: disable=TCAM013
            total += fut.result()
        return total
    """
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# Driver behaviour
# ---------------------------------------------------------------------------


def test_syntax_error_reported_as_tcam000():
    findings = analyze_source("def broken(:\n", "bad.py")
    assert [f.rule for f in findings] == ["TCAM000"]


def test_rule_catalogue_is_complete():
    assert sorted(RULES) == ["TCAM010", "TCAM011", "TCAM012", "TCAM013"]


def test_lambda_submissions_are_skipped():
    # Documented limitation: lambdas are not descended into.
    source = """
    from concurrent.futures import ThreadPoolExecutor

    def run(pool, state):
        pool.submit(lambda: state.update({"k": 1}))
    """
    assert rules_of(source) == []


def test_analyze_paths_walks_directories(tmp_path):
    (tmp_path / "dirty.py").write_text(
        textwrap.dedent(
            """
            from concurrent.futures import as_completed

            def gather(pending):
                return [f.result() for f in as_completed(pending)]
            """
        ),
        encoding="utf-8",
    )
    sub = tmp_path / "nested"
    sub.mkdir()
    (sub / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    findings = analyze_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["TCAM013"]
    assert findings[0].path.endswith("dirty.py")


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        textwrap.dedent(
            """
            from concurrent.futures import as_completed

            def gather(pending):
                return [f.result() for f in as_completed(pending)]
            """
        ),
        encoding="utf-8",
    )
    assert main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "TCAM013" in out.out

    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(clean)]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


# ---------------------------------------------------------------------------
# Process(target=...) entrypoints are worker roots (PR 8 serving service)
# ---------------------------------------------------------------------------


SPAWN_FLAGGED = [
    # entrypoint writes through an argument every spawned worker receives
    """
    from multiprocessing import get_context

    def worker_entry(shared, conn):
        shared["count"] = 1

    def launch(shared):
        ctx = get_context("spawn")
        for index in range(4):
            ctx.Process(target=worker_entry, args=(shared, None)).start()
    """,
    # bare Process name, shared object via a kwargs= pack
    """
    from multiprocessing import Process

    def entry(stats=None):
        stats["events"] += 1

    def launch(shared):
        for index in range(3):
            Process(target=entry, kwargs={"stats": shared}).start()
    """,
]

SPAWN_CLEAN = [
    # per-worker slot of a shared list is disjoint across processes
    """
    from multiprocessing import get_context

    def worker_entry(slot):
        slot["count"] = 1

    def launch(slots):
        ctx = get_context("spawn")
        for index in range(4):
            ctx.Process(target=worker_entry, args=(slots[index],)).start()
    """,
    # a dynamically built argument pack cannot be classified — no finding
    """
    from multiprocessing import Process

    def entry(shared):
        shared["count"] = 1

    def launch(shared, pack):
        Process(target=entry, args=pack).start()
    """,
]


@pytest.mark.parametrize("source", SPAWN_FLAGGED)
def test_spawn_entrypoints_are_worker_roots(source):
    rules = rules_of(source)
    assert "TCAM010" in rules or "TCAM011" in rules


@pytest.mark.parametrize("source", SPAWN_CLEAN)
def test_spawn_entrypoints_accept_disjoint_or_opaque_args(source):
    assert rules_of(source) == []


def test_spawn_module_counts_as_pool_for_replicated_buffers():
    # [buf] * n in a module that spawns processes is the same aliasing
    # hazard as in a threaded module.
    source = """
    from multiprocessing import Process
    import numpy as np

    def run(n, fn):
        buf = np.zeros(4)
        buffers = [buf] * n
        for index in range(n):
            Process(target=fn, args=(buffers[index],)).start()
    """
    assert "TCAM011" in rules_of(source)


def test_tcam012_covers_the_serving_service_package():
    source = """
    class Router:
        \"\"\"Maps users to workers.\"\"\"

        def route(self, user, worker):
            self.table[user] = worker
    """
    assert "TCAM012" in rules_of(source, "src/repro/serving_service/service.py")
    # a documented single-writer contract opts out, as in the recommend layer
    documented = source.replace(
        "Maps users to workers.",
        "Maps users to workers. Single-writer: event-loop only.",
    )
    assert "TCAM012" not in rules_of(
        documented, "src/repro/serving_service/service.py"
    )


def test_main_json_and_filters(tmp_path, capsys):
    """The shared CLI surface: --format json schema and --select/--ignore."""
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        textwrap.dedent(
            """
            from concurrent.futures import ThreadPoolExecutor

            class Engine:
                def run(self, chunks):
                    with ThreadPoolExecutor() as pool:
                        for chunk in chunks:
                            pool.submit(self.work, chunk)

                def work(self, chunk):
                    self.total = chunk.sum()
            """
        ).lstrip(),
        encoding="utf-8",
    )
    assert main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["TCAM010"]
    assert sorted(payload[0]) == ["col", "line", "message", "path", "rule"]
    assert main([str(dirty), "--ignore", "TCAM010"]) == 0
    assert main([str(dirty), "--select", "TCAM010"]) == 1


# ---------------------------------------------------------------------------
# Meta-test: the real tree must be race-clean
# ---------------------------------------------------------------------------


def test_real_tree_is_race_clean():
    """The gate CI enforces: zero findings across src/repro."""
    src = REPO_ROOT / "src" / "repro"
    assert src.is_dir(), f"expected source tree at {src}"
    findings = analyze_paths([str(src)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"tcam analyze found violations:\n{rendered}"
