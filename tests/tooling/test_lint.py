"""Fixture corpus for the domain linter (``repro.tooling.lint``).

Each rule gets three kinds of fixtures: snippets it must *flag*,
snippets where a ``# tcam-lint: disable=...`` comment *suppresses* the
finding, and *clean* snippets encoding the blessed idioms the real tree
uses. The meta-test at the bottom then runs the linter over the actual
``src/repro`` tree and requires zero findings — the same gate `make
lint` and CI enforce.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.tooling.lint import RULES, Finding, lint_paths, lint_source, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_of(source: str, path: str = "fixture.py") -> list[str]:
    """Lint a dedented snippet and return the rule codes found."""
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# TCAM001 — legacy / unseeded RNG
# ---------------------------------------------------------------------------

TCAM001_FLAGGED = [
    "import numpy as np\nx = np.random.rand(3)\n",
    "import numpy as np\nx = np.random.randint(0, 10)\n",
    "import numpy as np\nnp.random.seed(0)\n",
    "import numpy as np\nrng = np.random.RandomState(0)\n",
    "import numpy\nx = numpy.random.normal(size=4)\n",
]

TCAM001_CLEAN = [
    "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.random(3)\n",
    "import numpy as np\nss = np.random.SeedSequence(42)\n",
    "import numpy as np\ngen = np.random.Generator(np.random.PCG64(7))\n",
]


@pytest.mark.parametrize("source", TCAM001_FLAGGED)
def test_tcam001_flags_legacy_rng(source):
    assert "TCAM001" in rules_of(source)


@pytest.mark.parametrize("source", TCAM001_CLEAN)
def test_tcam001_allows_seeded_generators(source):
    assert "TCAM001" not in rules_of(source)


def test_tcam001_suppressible():
    source = (
        "import numpy as np\n"
        "x = np.random.rand(3)  # tcam-lint: disable=TCAM001\n"
    )
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM002 — unguarded np.log / np.divide
# ---------------------------------------------------------------------------

TCAM002_FLAGGED = [
    """
    import numpy as np

    def loglik(prob, c):
        return float(np.dot(c, np.log(prob)))
    """,
    """
    import numpy as np

    def ratio(num, den):
        return np.divide(num, den)
    """,
]

TCAM002_CLEAN = [
    # inline EPS term
    """
    import numpy as np

    EPS = 1e-12

    def loglik(prob, c):
        return float(np.dot(c, np.log(prob + EPS)))
    """,
    # guarded local assigned earlier in the function
    """
    import numpy as np

    EPS = 1e-12

    def loglik(interest, context, c):
        denom = interest + context + EPS
        return float(np.dot(c, np.log(denom)))
    """,
    # clamping call around the operand
    """
    import numpy as np

    def loglik(prob, c):
        return float(np.dot(c, np.log(np.maximum(prob, 1e-300))))
    """,
    # blessed safe_* helper: guard lives inside, name is the contract
    """
    import numpy as np

    def safe_log(values, eps=1e-12):
        return np.log(values + eps)
    """,
    # safe_-prefixed operand name counts as guarded
    """
    import numpy as np

    def update(num, safe_mass):
        return np.divide(num, safe_mass)
    """,
    # closures inherit guards from the enclosing scope
    """
    import numpy as np

    EPS = 1e-12

    def outer(interest, context, c):
        denom = interest + context + EPS

        def step():
            return float(np.dot(c, np.log(denom)))

        return step
    """,
]


@pytest.mark.parametrize("source", TCAM002_FLAGGED)
def test_tcam002_flags_unguarded_math(source):
    assert "TCAM002" in rules_of(source)


@pytest.mark.parametrize("source", TCAM002_CLEAN)
def test_tcam002_accepts_guarded_idioms(source):
    assert "TCAM002" not in rules_of(source)


def test_tcam002_suppressible():
    source = textwrap.dedent(
        """
        import numpy as np

        def loglik(prob, c):
            return float(np.dot(c, np.log(prob)))  # tcam-lint: disable=TCAM002
        """
    )
    assert lint_source(source, "fixture.py") == []


# ---------------------------------------------------------------------------
# TCAM003 — allocation inside hot paths
# ---------------------------------------------------------------------------

TCAM003_FLAGGED = [
    # decorated hot path allocating with np.zeros
    """
    import numpy as np
    from repro.typing import hot_path

    @hot_path
    def accumulate(ws):
        buf = np.zeros(10)
        return buf
    """,
    # .copy() method call in a hot path
    """
    from repro.typing import hot_path

    @hot_path
    def accumulate(state):
        return state.copy()
    """,
    # .astype without copy=False reallocates
    """
    from repro.typing import hot_path

    @hot_path
    def accumulate(theta):
        return theta.astype("float32")
    """,
]

TCAM003_CLEAN = [
    # allocation is fine outside hot paths
    """
    import numpy as np

    def make_workspace(capacity):
        return {"joint": np.empty((capacity, 4))}
    """,
    # hot path writing into a preallocated workspace
    """
    import numpy as np
    from repro.typing import hot_path

    @hot_path
    def accumulate(state, ws):
        np.multiply(state, 2.0, out=ws)
        return float(ws.sum())
    """,
    # astype with copy=False is a view when dtypes already match
    """
    from repro.typing import hot_path

    @hot_path
    def accumulate(theta):
        return theta.astype("float64", copy=False)
    """,
]


@pytest.mark.parametrize("source", TCAM003_FLAGGED)
def test_tcam003_flags_hot_path_allocation(source):
    assert "TCAM003" in rules_of(source)


@pytest.mark.parametrize("source", TCAM003_CLEAN)
def test_tcam003_accepts_workspace_writes(source):
    assert "TCAM003" not in rules_of(source)


def test_tcam003_builtin_kernel_config_applies_by_path():
    # The built-in hot-kernel list covers core/engine.py `accumulate`
    # methods even without the decorator — the path suffix selects it.
    source = textwrap.dedent(
        """
        import numpy as np

        class Kernel:
            def accumulate(self, state):
                return np.zeros(4)
        """
    )
    flagged = lint_source(source, "src/repro/core/engine.py")
    assert [f.rule for f in flagged] == ["TCAM003"]
    # The same source under a different path is not a hot kernel.
    assert lint_source(source, "src/repro/data/io.py") == []


@pytest.mark.parametrize(
    "allocator", ["concatenate", "stack", "hstack", "vstack", "empty_like"]
)
def test_tcam003_flags_concatenation_allocators(allocator):
    # The hot-path allocation rule covers the whole np.* allocating
    # family, not just zeros/empty.
    source = f"""
    import numpy as np
    from repro.typing import hot_path

    @hot_path
    def accumulate(a, b):
        return np.{allocator}([a, b])
    """
    assert rules_of(source) == ["TCAM003"]


@pytest.mark.parametrize(
    "import_line, call",
    [
        ("from numpy import concatenate", "concatenate([a, b])"),
        ("from numpy import vstack as vs", "vs([a, b])"),
        ("from numpy import empty_like", "empty_like(a)"),
    ],
)
def test_tcam003_tracks_bare_numpy_imports(import_line, call):
    # Allocators imported by bare name (optionally aliased) are caught
    # the same as the np.-prefixed spelling.
    source = f"""
    {import_line}
    from repro.typing import hot_path

    @hot_path
    def accumulate(a, b):
        return {call}
    """
    assert rules_of(source) == ["TCAM003"]


def test_tcam003_bare_import_outside_hot_path_is_clean():
    source = """
    from numpy import concatenate

    def make_workspace(a, b):
        return concatenate([a, b])
    """
    assert rules_of(source) == []


def test_tcam003_non_allocator_bare_import_is_clean():
    source = """
    from numpy import float64 as f64
    from repro.typing import hot_path

    @hot_path
    def accumulate(a):
        return f64(a.sum())
    """
    assert rules_of(source) == []


def test_tcam003_suppressible():
    source = textwrap.dedent(
        """
        import numpy as np
        from repro.typing import hot_path

        @hot_path
        def accumulate(ws):
            return np.zeros(10)  # tcam-lint: disable=TCAM003
        """
    )
    assert lint_source(source, "fixture.py") == []


# ---------------------------------------------------------------------------
# TCAM004 — __all__ consistency
# ---------------------------------------------------------------------------


def test_tcam004_flags_unbound_export():
    source = """
    __all__ = ["missing_function"]
    """
    assert rules_of(source) == ["TCAM004"]


def test_tcam004_flags_unexported_public_def():
    source = """
    __all__ = ["listed"]

    def listed():
        pass

    def forgotten():
        pass
    """
    assert rules_of(source) == ["TCAM004"]


def test_tcam004_flags_duplicate_export():
    source = """
    __all__ = ["thing", "thing"]

    def thing():
        pass
    """
    assert rules_of(source) == ["TCAM004"]


def test_tcam004_clean_module_passes():
    source = """
    from collections import OrderedDict

    __all__ = ["PUBLIC_CONSTANT", "OrderedDict", "exported"]

    PUBLIC_CONSTANT = 1

    def exported():
        pass

    def _private_helper():
        pass
    """
    assert rules_of(source) == []


def test_tcam004_silent_without_all():
    # Modules that do not declare __all__ opt out of the rule.
    source = """
    def anything():
        pass
    """
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM005 — nondeterministic bare-set iteration
# ---------------------------------------------------------------------------

TCAM005_FLAGGED = [
    """
    def f(items):
        for x in set(items):
            print(x)
    """,
    """
    def f(items):
        return [x * 2 for x in {1, 2, 3}]
    """,
    """
    def f(values):
        return sum(set(values))
    """,
    """
    def f(names):
        return ", ".join({n.strip() for n in names})
    """,
]

TCAM005_CLEAN = [
    """
    def f(items):
        for x in sorted(set(items)):
            print(x)
    """,
    # membership tests and len() on sets are order-free and fine
    """
    def f(items, probe):
        seen = set(items)
        return probe in seen and len(seen) > 2
    """,
]


@pytest.mark.parametrize("source", TCAM005_FLAGGED)
def test_tcam005_flags_bare_set_iteration(source):
    assert "TCAM005" in rules_of(source)


@pytest.mark.parametrize("source", TCAM005_CLEAN)
def test_tcam005_accepts_sorted_sets(source):
    assert "TCAM005" not in rules_of(source)


def test_tcam005_suppressible():
    source = textwrap.dedent(
        """
        def f(values):
            return sum(set(values))  # tcam-lint: disable=TCAM005
        """
    )
    assert lint_source(source, "fixture.py") == []


# ---------------------------------------------------------------------------
# Driver behaviour
# ---------------------------------------------------------------------------


def test_syntax_error_reported_as_tcam000():
    findings = lint_source("def broken(:\n", "bad.py")
    assert [f.rule for f in findings] == ["TCAM000"]


def test_finding_render_is_compiler_style():
    finding = Finding("pkg/mod.py", 12, 4, "TCAM001", "boom")
    assert finding.render() == "pkg/mod.py:12:4: TCAM001 boom"


def test_multi_rule_suppression_on_one_line():
    source = (
        "import numpy as np\n"
        "x = np.random.rand(3)  # tcam-lint: disable=TCAM001, TCAM002\n"
    )
    assert lint_source(source, "fixture.py") == []


def test_findings_sorted_by_position():
    source = textwrap.dedent(
        """
        import numpy as np

        def late(prob):
            return np.log(prob)

        x = np.random.rand(3)
        """
    )
    findings = lint_source(source, "fixture.py")
    assert [f.rule for f in findings] == ["TCAM002", "TCAM001"]
    assert findings[0].line < findings[1].line


def test_rule_catalogue_is_complete():
    assert sorted(RULES) == ["TCAM001", "TCAM002", "TCAM003", "TCAM004", "TCAM005"]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "dirty.py").write_text(
        "import numpy as np\nx = np.random.rand()\n", encoding="utf-8"
    )
    sub = tmp_path / "nested"
    sub.mkdir()
    (sub / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    findings = lint_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["TCAM001"]
    assert findings[0].path.endswith("dirty.py")


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nx = np.random.rand()\n", encoding="utf-8")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "TCAM001" in out.out

    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(clean)]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_main_json_and_filters(tmp_path, capsys):
    """The shared CLI surface: --format json schema and --select/--ignore."""
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nx = np.random.rand()\n", encoding="utf-8")
    assert main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["TCAM001"]
    assert sorted(payload[0]) == ["col", "line", "message", "path", "rule"]
    # filtered to nothing -> clean exit
    assert main([str(dirty), "--ignore", "TCAM001"]) == 0
    assert main([str(dirty), "--select", "TCAM002"]) == 0
    assert main([str(dirty), "--select", "TCAM001"]) == 1


# ---------------------------------------------------------------------------
# Meta-test: the real tree must be lint-clean
# ---------------------------------------------------------------------------


def test_real_tree_is_lint_clean():
    """The gate CI enforces: zero findings across src/repro."""
    src = REPO_ROOT / "src" / "repro"
    assert src.is_dir(), f"expected source tree at {src}"
    findings = lint_paths([str(src)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"tcam lint found violations:\n{rendered}"
