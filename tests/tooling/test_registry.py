"""The shared rule registry and the cross-tool CLI parity contract.

Registry side: every ``TCAMxxx`` code is declared exactly once in
``repro.tooling.registry``, each tool's ``RULES`` mapping is derived
from it (no duplicate, unregistered, or orphaned codes anywhere), and
every rule's ``doc_anchor`` resolves to a real heading in
``docs/static-analysis.md`` (using GitHub's heading-slug convention).

Parity side: the four tools — ``tcam lint``, ``tcam analyze``,
``tcam audit``, ``tcam prove`` — are one CLI surface. The parametrized
tests drive each tool's ``main`` through the shared flags (``--format
json``, ``--select``, ``--ignore``, ``--list-rules``, exit codes,
stable sort) against a per-tool dirty fixture and assert identical
behaviour everywhere.
"""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.tooling.determinism import RULES as PROVE_RULES
from repro.tooling.determinism import main as prove_main
from repro.tooling.lifecycle import RULES as AUDIT_RULES
from repro.tooling.lifecycle import main as audit_main
from repro.tooling.lint import RULES as LINT_RULES
from repro.tooling.lint import main as lint_main
from repro.tooling.races import RULES as ANALYZE_RULES
from repro.tooling.races import main as analyze_main
from repro.tooling.registry import (
    REGISTRY,
    registry_errors,
    rules_for_tool,
    spec_for,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: tool name -> the RULES mapping that tool actually exports.
TOOL_RULES = {
    "lint": LINT_RULES,
    "analyze": ANALYZE_RULES,
    "audit": AUDIT_RULES,
    "prove": PROVE_RULES,
}


# ---------------------------------------------------------------------------
# Registry integrity
# ---------------------------------------------------------------------------


def test_registry_is_internally_consistent():
    assert registry_errors() == []


def test_every_tool_exports_exactly_its_registered_rules():
    for tool, rules in TOOL_RULES.items():
        assert rules == rules_for_tool(tool), (
            f"{tool}'s RULES mapping disagrees with the registry"
        )


def test_no_code_is_claimed_by_two_tools():
    seen: dict[str, str] = {}
    for tool, rules in TOOL_RULES.items():
        for code in rules:
            assert code not in seen, (
                f"{code} claimed by both {seen[code]} and {tool}"
            )
            seen[code] = tool


def test_registry_covers_all_tools_and_nothing_else():
    tool_codes = {code for rules in TOOL_RULES.values() for code in rules}
    registered = {
        code for code, spec in REGISTRY.items() if spec.tool != "shared"
    }
    assert tool_codes == registered
    # the shared parse-failure pseudo-rule exists but belongs to no tool
    assert spec_for("TCAM000").tool == "shared"
    assert "TCAM000" not in tool_codes


def test_spec_lookup_is_case_insensitive_and_strict():
    assert spec_for("tcam030").code == "TCAM030"
    with pytest.raises(KeyError):
        spec_for("TCAM999")


def _github_slug(heading: str) -> str:
    """GitHub's markdown heading-anchor convention."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def test_every_doc_anchor_resolves_to_a_real_heading():
    doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
    slugs = {
        _github_slug(line.lstrip("#"))
        for line in doc.splitlines()
        if line.startswith("#")
    }
    for spec in REGISTRY.values():
        assert spec.doc_anchor in slugs, (
            f"{spec.code}'s doc anchor #{spec.doc_anchor} has no matching "
            "heading in docs/static-analysis.md"
        )
        assert spec.doc_url == f"docs/static-analysis.md#{spec.doc_anchor}"


def test_rules_for_unknown_tool_is_an_error():
    with pytest.raises(ValueError):
        rules_for_tool("fuzz")


# ---------------------------------------------------------------------------
# Cross-tool CLI parity
# ---------------------------------------------------------------------------

#: Per-tool minimal dirty fixture and the single rule it must trigger.
LINT_DIRTY = """
import numpy as np

x = np.random.rand(3)
"""

ANALYZE_DIRTY = """
from concurrent.futures import ThreadPoolExecutor

class Engine:
    def run(self, n):
        with ThreadPoolExecutor() as pool:
            futures = [pool.submit(self._worker, w) for w in range(n)]
        return [f.result() for f in futures]

    def _worker(self, worker):
        self.total += worker
"""

AUDIT_DIRTY = """
def read_header(path):
    handle = open(path, "rb")
    return handle.read(16).hex()
"""

PROVE_DIRTY = """
from repro.typing import bit_deterministic

@bit_deterministic
def replay(events):
    out = []
    for event in set(events):
        out.append(event)
    return out
"""

TOOLS = [
    pytest.param(lint_main, "lint", LINT_DIRTY, "TCAM001", id="lint"),
    pytest.param(analyze_main, "analyze", ANALYZE_DIRTY, "TCAM010", id="analyze"),
    pytest.param(audit_main, "audit", AUDIT_DIRTY, "TCAM020", id="audit"),
    pytest.param(prove_main, "prove", PROVE_DIRTY, "TCAM030", id="prove"),
]


def _write_dirty(tmp_path: Path, source: str) -> Path:
    dirty = tmp_path / "dirty.py"
    dirty.write_text(textwrap.dedent(source).lstrip(), encoding="utf-8")
    return dirty


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_exit_codes_are_uniform(tool_main, tool, dirty_source, expected_rule, tmp_path):
    dirty = _write_dirty(tmp_path, dirty_source)
    assert tool_main([str(dirty)]) == 1
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert tool_main([str(clean)]) == 0


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_json_schema_is_shared(tool_main, tool, dirty_source, expected_rule, tmp_path, capsys):
    dirty = _write_dirty(tmp_path, dirty_source)
    assert tool_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == [expected_rule]
    for finding in payload:
        assert sorted(finding) == ["col", "line", "message", "path", "rule"]


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_json_output_is_stable_across_runs(tool_main, tool, dirty_source, expected_rule, tmp_path, capsys):
    dirty = _write_dirty(tmp_path, dirty_source)
    assert tool_main([str(dirty), "--format", "json"]) == 1
    first = capsys.readouterr().out
    assert tool_main([str(dirty), "--format", "json"]) == 1
    assert capsys.readouterr().out == first


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_select_and_ignore_filters(tool_main, tool, dirty_source, expected_rule, tmp_path, capsys):
    dirty = _write_dirty(tmp_path, dirty_source)
    # selecting an unrelated rule drops the finding and the failure
    assert tool_main([str(dirty), "--select", "TCAM999"]) == 0
    # ignoring the expected rule likewise
    assert tool_main([str(dirty), "--ignore", expected_rule]) == 0
    # selecting the expected rule keeps it
    assert tool_main([str(dirty), "--select", expected_rule]) == 1
    capsys.readouterr()


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_list_rules_prints_the_registry_catalogue(tool_main, tool, dirty_source, expected_rule, capsys):
    assert tool_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code, summary in rules_for_tool(tool).items():
        assert code in out
        assert summary in out


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_sarif_format_names_the_tool(tool_main, tool, dirty_source, expected_rule, tmp_path, capsys):
    dirty = _write_dirty(tmp_path, dirty_source)
    assert tool_main([str(dirty), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == f"tcam {tool}"
    assert [r["ruleId"] for r in log["runs"][0]["results"]] == [expected_rule]
    rule = log["runs"][0]["tool"]["driver"]["rules"][0]
    assert rule["helpUri"] == spec_for(expected_rule).doc_url


@pytest.mark.parametrize("tool_main, tool, dirty_source, expected_rule", TOOLS)
def test_baseline_flags_work_everywhere(tool_main, tool, dirty_source, expected_rule, tmp_path, capsys):
    dirty = _write_dirty(tmp_path, dirty_source)
    baseline = tmp_path / "baseline.json"
    assert tool_main([str(dirty), "--write-baseline", str(baseline)]) == 0
    assert tool_main([str(dirty), "--baseline", str(baseline)]) == 0
    assert tool_main([str(dirty), "--baseline", str(tmp_path / "missing.json")]) == 2
    capsys.readouterr()
