"""Fixture corpus for the determinism verifier (``repro.tooling.determinism``).

Mirrors ``test_lint.py``/``test_races.py``/``test_lifecycle.py``: every
rule gets snippets it must *flag*, snippets where
``# tcam-lint: disable=...`` *suppresses* the finding, and *clean*
snippets encoding the blessed idioms the real tree uses (sorted
directory listings, submission-order reduction, stable sorts, matched
dtypes, seeded generators). The meta-test at the bottom runs the
verifier over the actual ``src/repro`` tree and requires zero findings
— the same gate ``make prove`` and CI enforce.

The dynamic cross-checks at the end close the loop between the static
rule and the bit-level failure it predicts: the TCAM030-flagged
set-iteration pattern is executed under several ``PYTHONHASHSEED``
values and demonstrably emits different sequences while the
``sorted(...)`` rewrite is bit-identical, and the TCAM031-flagged
completion-order fold produces different float bits across completion
orders while the submission-order fold does not.

The SARIF tests validate ``--format sarif`` output against a vendored
structural subset of the 2.1.0 schema (``sarif-2.1.0-subset.json``);
the baseline tests exercise the record-then-gate-on-new workflow.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import textwrap
from pathlib import Path

import jsonschema
import pytest

from repro.tooling.determinism import RULES, main, prove_paths, prove_source
from repro.tooling.lint import Finding
from repro.tooling.output import (
    SARIF_SCHEMA_URI,
    apply_baseline,
    load_baseline,
    render_sarif,
)
from repro.typing import bit_deterministic, is_bit_deterministic

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Path that puts a fixture inside a TCAM035 contract module.
CONTRACT_PATH = "src/repro/core/em.py"
#: Path blessed for TCAM033 narrowing casts.
BLESSED_PATH = "src/repro/recommend/quantize.py"


def rules_of(source: str, path: str = "fixture.py") -> list[str]:
    """Verify a dedented snippet and return the rule codes found."""
    return [f.rule for f in prove_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# The @bit_deterministic marker is zero-cost
# ---------------------------------------------------------------------------


def test_marker_returns_the_function_unchanged():
    def fn(x):
        return x + 1

    marked = bit_deterministic(fn)
    assert marked is fn
    assert marked(2) == 3


def test_marker_predicate():
    @bit_deterministic
    def marked():
        return 0

    def unmarked():
        return 0

    assert is_bit_deterministic(marked)
    assert not is_bit_deterministic(unmarked)


# ---------------------------------------------------------------------------
# TCAM030 — unordered iteration on a deterministic path
# ---------------------------------------------------------------------------

TCAM030_FLAGGED = [
    # set constructor drives an accumulating loop
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def replay(events):
        out = []
        for event in set(events):
            out.append(event)
        return out
    """,
    # glob order feeds a float accumulation
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def total_mass(directory):
        total = 0.0
        for path in directory.glob("*.npz"):
            total += load_mass(path)
        return total
    """,
    # generator comprehension over os.listdir emits a sequence
    """
    import os
    from repro.typing import bit_deterministic

    @bit_deterministic
    def scores(root):
        return sum(score(name) for name in os.listdir(root))
    """,
    # str.join over a set-comprehension local
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def fingerprint(tags):
        names = {t.lower() for t in tags}
        return ",".join(names)
    """,
    # the contract propagates: the helper is reached from the marked root
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def run(items):
        return collect(items)

    def collect(items):
        bucket = []
        for item in set(items):
            bucket.append(item)
        return bucket
    """,
]

TCAM030_SUPPRESSED = [
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def replay(events):
        out = []
        for event in set(events):  # tcam-lint: disable=TCAM030
            out.append(event)
        return out
    """,
]

TCAM030_CLEAN = [
    # sorted(...) pins the order — the blessed wal.py idiom
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def replay(directory):
        out = []
        for path in sorted(directory.glob("wal-*.log")):
            out.append(path)
        return out
    """,
    # dict iteration is insertion-ordered and exempt
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def flatten(mapping):
        out = []
        for key in mapping:
            out.append(key)
        return out
    """,
    # membership tests don't iterate
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def keep(items, allowed):
        allowed_set = set(allowed)
        return [item for item in items if item in allowed_set]
    """,
    # unmarked functions are outside the contract
    """
    def replay(events):
        out = []
        for event in set(events):
            out.append(event)
        return out
    """,
]


@pytest.mark.parametrize("source", TCAM030_FLAGGED)
def test_tcam030_flagged(source):
    assert "TCAM030" in rules_of(source)


@pytest.mark.parametrize("source", TCAM030_SUPPRESSED)
def test_tcam030_suppressed(source):
    assert "TCAM030" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM030_CLEAN)
def test_tcam030_clean(source):
    assert rules_of(source) == []


def test_tcam030_message_names_the_root():
    """Propagated findings attribute the contract to the marked root."""
    findings = prove_source(textwrap.dedent(TCAM030_FLAGGED[-1]), "fixture.py")
    assert any("rooted at 'run'" in f.message for f in findings)


def test_propagation_respects_the_depth_budget():
    """The descent stops at _MAX_DEPTH, so f4 is checked but f5 is not."""
    chain = ["from repro.typing import bit_deterministic\n"]
    chain.append("@bit_deterministic\ndef f0(items):\n    return f1(items)\n")
    for depth in range(1, 5):
        chain.append(
            f"def f{depth}(items):\n    return f{depth + 1}(items)\n"
        )
    chain.append(
        "def f5(items):\n"
        "    out = []\n"
        "    for item in set(items):\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    assert rules_of("\n".join(chain)) == []

    shallow = chain[:5] + [
        "def f4(items):\n"
        "    out = []\n"
        "    for item in set(items):\n"
        "        out.append(item)\n"
        "    return out\n"
    ]
    assert "TCAM030" in rules_of("\n".join(shallow))


# ---------------------------------------------------------------------------
# TCAM031 — scheduling-dependent float reduction
# ---------------------------------------------------------------------------

TCAM031_FLAGGED = [
    # folding results in completion order
    """
    from concurrent.futures import as_completed
    from repro.typing import bit_deterministic

    @bit_deterministic
    def reduce_parallel(pool, chunks):
        futures = [pool.submit(work, chunk) for chunk in chunks]
        total = 0.0
        for fut in as_completed(futures):
            total += fut.result()
        return total
    """,
    # collecting partials in completion order
    """
    from concurrent.futures import as_completed
    from repro.typing import bit_deterministic

    @bit_deterministic
    def partials(futures):
        return [f.result() for f in as_completed(futures)]
    """,
    # sum over an unordered pool iterator
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def fold(pool, chunks):
        return sum(pool.imap_unordered(work, chunks))
    """,
    # machine-dependent worker grid inside the deterministic region
    """
    import os
    from repro.typing import bit_deterministic

    @bit_deterministic
    def plan(n):
        workers = os.cpu_count()
        return n // workers
    """,
]

TCAM031_SUPPRESSED = [
    """
    from concurrent.futures import as_completed
    from repro.typing import bit_deterministic

    @bit_deterministic
    def reduce_parallel(pool, chunks):
        futures = [pool.submit(work, chunk) for chunk in chunks]
        total = 0.0
        for fut in as_completed(futures):  # tcam-lint: disable=TCAM031
            total += fut.result()
        return total
    """,
]

TCAM031_CLEAN = [
    # the blessed engine pattern: submission order, fixed reduction
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def reduce_parallel(pool, chunks):
        futures = [pool.submit(work, chunk) for chunk in chunks]
        partials = [f.result() for f in futures]
        total = 0.0
        for value in partials:
            total += value
        return total
    """,
    # unmarked code is outside the contract
    """
    from concurrent.futures import as_completed

    def reduce_parallel(futures):
        total = 0.0
        for fut in as_completed(futures):
            total += fut.result()
        return total
    """,
]


@pytest.mark.parametrize("source", TCAM031_FLAGGED)
def test_tcam031_flagged(source):
    assert "TCAM031" in rules_of(source)


@pytest.mark.parametrize("source", TCAM031_SUPPRESSED)
def test_tcam031_suppressed(source):
    assert "TCAM031" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM031_CLEAN)
def test_tcam031_clean(source):
    assert rules_of(source) == []


def test_completion_order_is_tcam031_not_tcam030():
    """as_completed folds get the precise rule, never a double flag."""
    codes = rules_of(TCAM031_FLAGGED[0])
    assert codes.count("TCAM031") == 1
    assert "TCAM030" not in codes


# ---------------------------------------------------------------------------
# TCAM032 — unstable sort on a deterministic path
# ---------------------------------------------------------------------------

TCAM032_FLAGGED = [
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ranking(scores):
        return np.argsort(scores)[::-1]
    """,
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ordered(values):
        return np.sort(values)
    """,
    # method spelling
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ranking(scores):
        return scores.argsort()
    """,
]

TCAM032_SUPPRESSED = [
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ranking(scores):
        return np.argsort(scores)[::-1]  # tcam-lint: disable=TCAM032
    """,
]

TCAM032_CLEAN = [
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ranking(scores):
        return np.argsort(scores, kind="stable")[::-1]
    """,
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ordered(values):
        return np.sort(values, kind="mergesort")
    """,
    # Python's sorted/list.sort and np.lexsort are stable by spec
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def ordered(pairs, keys):
        ranked = sorted(pairs)
        ranked.sort()
        return np.lexsort(keys)
    """,
    # unmarked code is outside the contract
    """
    import numpy as np

    def ranking(scores):
        return np.argsort(scores)
    """,
]


@pytest.mark.parametrize("source", TCAM032_FLAGGED)
def test_tcam032_flagged(source):
    assert "TCAM032" in rules_of(source)


@pytest.mark.parametrize("source", TCAM032_SUPPRESSED)
def test_tcam032_suppressed(source):
    assert "TCAM032" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM032_CLEAN)
def test_tcam032_clean(source):
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM033 — silent float dtype mixing
# ---------------------------------------------------------------------------

TCAM033_FLAGGED = [
    # annotated float64 param times a visible float32 local
    """
    import numpy as np
    from repro.typing import FloatArray, bit_deterministic

    @bit_deterministic
    def scale(theta: FloatArray):
        factors = np.zeros(4, dtype="float32")
        return theta * factors
    """,
    # hot paths get the dtype rule even without the determinism marker
    """
    import numpy as np
    from repro.typing import hot_path

    @hot_path
    def axpy(out):
        a = np.ones(4, dtype="float16")
        b = np.ones(4, dtype="float64")
        np.add(a, b, out=out)
    """,
    # narrowing cast outside the blessed quantize layer
    """
    from repro.typing import FloatArray, bit_deterministic

    @bit_deterministic
    def shrink(theta: FloatArray):
        return theta.astype("float32")
    """,
    # constructor-style narrowing
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def shrink(value):
        return np.float16(value)
    """,
]

TCAM033_SUPPRESSED = [
    """
    from repro.typing import FloatArray, bit_deterministic

    @bit_deterministic
    def shrink(theta: FloatArray):
        return theta.astype("float32")  # tcam-lint: disable=TCAM033
    """,
]

TCAM033_CLEAN = [
    # matched dtypes
    """
    import numpy as np
    from repro.typing import bit_deterministic

    @bit_deterministic
    def scale(values):
        a = np.zeros(4, dtype="float32")
        b = np.ones(4, dtype="float32")
        return a * b
    """,
    # widening to float64 is not a narrowing cast
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def widen(values):
        return values.astype("float64")
    """,
    # the quantized-selection layer is blessed for narrowing
    (
        """
        from repro.typing import FloatArray, bit_deterministic

        @bit_deterministic
        def quantize(theta: FloatArray):
            return theta.astype("float32")
        """,
        BLESSED_PATH,
    ),
    # unmarked, not hot: outside both contracts
    """
    import numpy as np

    def scale(theta):
        factors = np.zeros(4, dtype="float32")
        b = np.ones(4, dtype="float64")
        return factors * b
    """,
]


@pytest.mark.parametrize("source", TCAM033_FLAGGED)
def test_tcam033_flagged(source):
    assert "TCAM033" in rules_of(source)


@pytest.mark.parametrize("source", TCAM033_SUPPRESSED)
def test_tcam033_suppressed(source):
    assert "TCAM033" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM033_CLEAN)
def test_tcam033_clean(source):
    if isinstance(source, tuple):
        source, path = source
        assert rules_of(source, path) == []
    else:
        assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM034 — wall-clock / unseeded entropy
# ---------------------------------------------------------------------------

TCAM034_FLAGGED = [
    """
    import time
    from repro.typing import bit_deterministic

    @bit_deterministic
    def stamp(event):
        event.created = time.time()
        return event
    """,
    """
    import datetime
    from repro.typing import bit_deterministic

    @bit_deterministic
    def stamp(event):
        event.created = datetime.datetime.now()
        return event
    """,
    """
    import uuid
    from repro.typing import bit_deterministic

    @bit_deterministic
    def request_id():
        return uuid.uuid4().hex
    """,
    # builtin hash() is PYTHONHASHSEED-dependent for str
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def shard(key, n):
        return hash(key) % n
    """,
    # unseeded generator draws OS entropy
    """
    from numpy.random import default_rng
    from repro.typing import bit_deterministic

    @bit_deterministic
    def jitter(n):
        rng = default_rng()
        return rng.random(n)
    """,
    # the process-global random module
    """
    import random
    from repro.typing import bit_deterministic

    @bit_deterministic
    def pick(items):
        return random.choice(items)
    """,
]

TCAM034_SUPPRESSED = [
    """
    import time
    from repro.typing import bit_deterministic

    @bit_deterministic
    def stamp(event):
        event.created = time.time()  # tcam-lint: disable=TCAM034
        return event
    """,
]

TCAM034_CLEAN = [
    # duration clocks are diagnostics-only and exempt
    """
    import time
    from repro.typing import bit_deterministic

    @bit_deterministic
    def timed(work):
        start = time.perf_counter()
        result = work()
        return result, time.perf_counter() - start
    """,
    # seeded generators are the blessed random source
    """
    from numpy.random import default_rng
    from repro.typing import bit_deterministic

    @bit_deterministic
    def jitter(n, seed):
        rng = default_rng(seed)
        return rng.random(n)
    """,
    # an unrelated .time() method is not the time module
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def event_time(event):
        return event.time()
    """,
    # unmarked code is outside the contract
    """
    import time

    def stamp(event):
        event.created = time.time()
        return event
    """,
]


@pytest.mark.parametrize("source", TCAM034_FLAGGED)
def test_tcam034_flagged(source):
    assert "TCAM034" in rules_of(source)


@pytest.mark.parametrize("source", TCAM034_SUPPRESSED)
def test_tcam034_suppressed(source):
    assert "TCAM034" not in rules_of(source)


@pytest.mark.parametrize("source", TCAM034_CLEAN)
def test_tcam034_clean(source):
    assert rules_of(source) == []


# ---------------------------------------------------------------------------
# TCAM035 — @bit_deterministic coverage
# ---------------------------------------------------------------------------

TCAM035_FLAGGED = [
    # contract function present but unmarked
    """
    def run_em(engine, params):
        return engine.step(params)
    """,
    # contract function missing from its module entirely
    """
    def some_other_function():
        return 1
    """,
]

TCAM035_SUPPRESSED = [
    """
    def run_em(engine, params):  # tcam-lint: disable=TCAM035
        return engine.step(params)
    """,
]

TCAM035_CLEAN = [
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def run_em(engine, params):
        return engine.step(params)
    """,
]


@pytest.mark.parametrize("source", TCAM035_FLAGGED)
def test_tcam035_flagged(source):
    assert "TCAM035" in rules_of(source, CONTRACT_PATH)


@pytest.mark.parametrize("source", TCAM035_SUPPRESSED)
def test_tcam035_suppressed(source):
    assert "TCAM035" not in rules_of(source, CONTRACT_PATH)


@pytest.mark.parametrize("source", TCAM035_CLEAN)
def test_tcam035_clean(source):
    assert rules_of(source, CONTRACT_PATH) == []


def test_tcam035_covers_method_contracts():
    source = """
    class BlockedEStep:
        def compute(self, params):
            return params
    """
    assert "TCAM035" in rules_of(source, "src/repro/core/engine.py")


def test_tcam035_only_applies_to_contract_modules():
    assert rules_of("def run_em():\n    return 1\n", "fixture.py") == []


# ---------------------------------------------------------------------------
# CLI surface: rule catalogue, exit codes, directory walk
# ---------------------------------------------------------------------------

DIRTY_SOURCE = textwrap.dedent(
    """
    from repro.typing import bit_deterministic

    @bit_deterministic
    def replay(events):
        out = []
        for event in set(events):
            out.append(event)
        return out
    """
).lstrip()


def test_rule_catalogue_is_complete():
    assert sorted(RULES) == [
        "TCAM030",
        "TCAM031",
        "TCAM032",
        "TCAM033",
        "TCAM034",
        "TCAM035",
    ]


def test_prove_paths_walks_directories(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY_SOURCE, encoding="utf-8")
    sub = tmp_path / "nested"
    sub.mkdir()
    (sub / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    findings = prove_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["TCAM030"]
    assert findings[0].path.endswith("dirty.py")


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY_SOURCE, encoding="utf-8")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "TCAM030" in out.out

    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(clean)]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    findings = prove_paths([str(bad)])
    assert [f.rule for f in findings] == ["TCAM000"]


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


def _sarif_schema() -> dict:
    schema_path = Path(__file__).with_name("sarif-2.1.0-subset.json")
    return json.loads(schema_path.read_text(encoding="utf-8"))


def _dirty_findings(tmp_path: Path) -> list[Finding]:
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        DIRTY_SOURCE + "\n\nimport numpy as np\n\n"
        "@bit_deterministic\n"
        "def ranking(scores):\n"
        "    return np.argsort(scores)\n",
        encoding="utf-8",
    )
    return prove_paths([str(dirty)])


def test_sarif_log_validates_against_the_schema(tmp_path):
    schema = _sarif_schema()
    jsonschema.Draft7Validator.check_schema(schema)
    findings = _dirty_findings(tmp_path)
    assert findings, "fixture must produce findings"
    log = json.loads(render_sarif(findings, "tcam prove"))
    jsonschema.validate(log, schema)


def test_sarif_empty_log_validates_too():
    log = json.loads(render_sarif([], "tcam prove"))
    jsonschema.validate(log, _sarif_schema())
    assert log["runs"][0]["results"] == []


def test_sarif_structure_and_rule_metadata(tmp_path):
    from repro.tooling.registry import REGISTRY

    findings = _dirty_findings(tmp_path)
    log = json.loads(render_sarif(findings, "tcam prove"))
    assert log["$schema"] == SARIF_SCHEMA_URI
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "tcam prove"
    rules = run["tool"]["driver"]["rules"]
    fired = sorted({f.rule for f in findings})
    assert [r["id"] for r in rules] == fired
    for rule in rules:
        spec = REGISTRY[rule["id"]]
        assert rule["shortDescription"]["text"] == spec.summary
        assert rule["helpUri"] == spec.doc_url
    for result, finding in zip(
        run["results"],
        sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message)),
    ):
        assert result["ruleId"] == finding.rule
        assert rules[result["ruleIndex"]]["id"] == finding.rule
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1


def test_sarif_cli_roundtrip(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY_SOURCE, encoding="utf-8")
    assert main([str(dirty), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    jsonschema.validate(log, _sarif_schema())
    assert [r["ruleId"] for r in log["runs"][0]["results"]] == ["TCAM030"]


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def test_apply_baseline_matches_with_multiplicity():
    first = Finding("a.py", 3, 0, "TCAM030", "same message")
    second = Finding("a.py", 9, 0, "TCAM030", "same message")
    moved = Finding("a.py", 40, 4, "TCAM030", "same message")
    other = Finding("b.py", 1, 0, "TCAM032", "different")

    one_recorded = apply_baseline([first, second], {("a.py", "TCAM030", "same message"): 1})
    assert len(one_recorded) == 1  # the second identical occurrence is new

    # line numbers are ignored: a moved finding still matches
    assert apply_baseline([moved], {("a.py", "TCAM030", "same message"): 1}) == []
    # unrecorded findings always surface
    assert apply_baseline([other], {("a.py", "TCAM030", "same message"): 1}) == [other]


def test_baseline_workflow_end_to_end(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY_SOURCE, encoding="utf-8")
    baseline = tmp_path / "baseline.json"

    # 1. record the debt: exit 0, findings land in the file
    assert main([str(dirty), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    recorded = load_baseline(baseline)
    assert sum(recorded.values()) == 1

    # 2. gate on the baseline: the recorded finding no longer fails the run
    assert main([str(dirty), "--baseline", str(baseline)]) == 0
    assert capsys.readouterr().out.strip() == ""

    # 3. a NEW finding still fails, and only the new one is reported
    dirty.write_text(
        DIRTY_SOURCE + "\nimport numpy as np\n\n"
        "@bit_deterministic\n"
        "def ranking(scores):\n"
        "    return np.argsort(scores)\n",
        encoding="utf-8",
    )
    assert main([str(dirty), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "TCAM032" in out
    assert "TCAM030" not in out


def test_missing_baseline_is_an_error_not_an_empty_baseline(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(clean), "--baseline", str(tmp_path / "nope.json")]) == 2


# ---------------------------------------------------------------------------
# Meta-test: the real tree must prove clean
# ---------------------------------------------------------------------------


def test_real_tree_proves_clean():
    """The gate CI enforces: zero findings across src/repro."""
    src = REPO_ROOT / "src" / "repro"
    assert src.is_dir(), f"expected source tree at {src}"
    findings = prove_paths([str(src)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"tcam prove found violations:\n{rendered}"


def test_contract_functions_really_carry_the_marker():
    """The runtime attribute agrees with the static table for key roots."""
    from repro.analysis.topics import match_topics
    from repro.core.em import run_em
    from repro.core.engine import BlockedEStep
    from repro.extensions.social import build_homophilous_graph

    assert is_bit_deterministic(run_em)
    assert is_bit_deterministic(BlockedEStep.compute)
    assert is_bit_deterministic(match_topics)
    assert is_bit_deterministic(build_homophilous_graph)


# ---------------------------------------------------------------------------
# Dynamic cross-check: TCAM030 really breaks bit-identity
# ---------------------------------------------------------------------------

#: Twenty distinct words: the probability that several PYTHONHASHSEED
#: values all yield the same set-iteration order is ~0.
_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango",
]

VIOLATING_REPLAY = f"""
import sys

from repro.typing import bit_deterministic

WORDS = {_WORDS!r}


@bit_deterministic
def replay(words):
    tags = set(words)
    out = []
    for tag in tags:
        out.append(tag)
    return out


sys.stdout.write("|".join(replay(WORDS)))
"""

COMPLIANT_REPLAY = f"""
import sys

from repro.typing import bit_deterministic

WORDS = {_WORDS!r}


@bit_deterministic
def replay(words):
    tags = set(words)
    out = []
    for tag in sorted(tags):
        out.append(tag)
    return out


sys.stdout.write("|".join(replay(WORDS)))
"""


def _run_under_seeds(script: Path, seeds: range) -> list[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    outputs = []
    for seed in seeds:
        env["PYTHONHASHSEED"] = str(seed)
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(proc.stdout)
    return outputs


def test_tcam030_flagged_pattern_diverges_under_hash_seeds(tmp_path):
    # Static side: the verifier flags exactly this pattern.
    assert "TCAM030" in rules_of(VIOLATING_REPLAY)

    # Runtime side: the emitted sequence depends on PYTHONHASHSEED — the
    # bit-identity break the rule predicts.
    script = tmp_path / "violating.py"
    script.write_text(textwrap.dedent(VIOLATING_REPLAY), encoding="utf-8")
    outputs = _run_under_seeds(script, range(8))
    assert len(set(outputs)) > 1
    # same elements every time — only the *order* is nondeterministic
    assert {frozenset(out.split("|")) for out in outputs} == {frozenset(_WORDS)}


def test_tcam030_compliant_rewrite_is_bit_identical(tmp_path):
    # Static side: sorted(...) satisfies the verifier.
    assert rules_of(COMPLIANT_REPLAY) == []

    script = tmp_path / "compliant.py"
    script.write_text(textwrap.dedent(COMPLIANT_REPLAY), encoding="utf-8")
    outputs = _run_under_seeds(script, range(8))
    assert len(set(outputs)) == 1
    assert outputs[0] == "|".join(sorted(_WORDS))


# ---------------------------------------------------------------------------
# Dynamic cross-check: TCAM031 — completion order changes the float bits
# ---------------------------------------------------------------------------

#: Partials whose fold order visibly changes the float64 result: the
#: big/small cancellation absorbs the 0.1s whenever 1e16 is folded first.
_PARTIALS = [1e16, -1e16] + [0.1] * 8


def _completion_order_fold(partials, order):
    """The flagged shape: fold in whatever order workers finish."""
    total = 0.0
    for index in order:
        total += partials[index]
    return total


def _submission_order_fold(partials, order):
    """The blessed shape: collect by slot, reduce in fixed worker order."""
    slots = [0.0] * len(partials)
    for index in order:  # workers finish in arbitrary order...
        slots[index] = partials[index]
    total = 0.0
    for value in slots:  # ...but the reduction order is fixed
        total += value
    return total


def test_tcam031_completion_order_changes_the_bits():
    orders = []
    for seed in range(6):
        order = list(range(len(_PARTIALS)))
        random.Random(seed).shuffle(order)
        orders.append(order)

    completion = {_completion_order_fold(_PARTIALS, order) for order in orders}
    submission = {_submission_order_fold(_PARTIALS, order) for order in orders}

    # The flagged fold's float bits depend on completion order...
    assert len(completion) > 1
    # ...while the blessed fold is bit-identical across every schedule.
    assert len(submission) == 1
