"""Tests for online folding-in."""

import numpy as np
import pytest

from repro.core.ttcam import TTCAM
from repro.extensions.online import OnlineTTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def base():
    cuboid, truth = c.generate(c.tiny_config(seed=12))
    model = TTCAM(4, 3, max_iter=30, seed=0).fit(cuboid)
    return model, cuboid, truth


class TestConstruction:
    def test_accepts_model_or_params(self, base):
        model, _, _ = base
        assert OnlineTTCAM(model).params is model.params_
        assert OnlineTTCAM(model.params_).params is model.params_

    def test_rejects_unfitted(self):
        with pytest.raises(ValueError, match="not fitted"):
            OnlineTTCAM(TTCAM())

    def test_rejects_bad_iterations(self, base):
        model, _, _ = base
        with pytest.raises(ValueError):
            OnlineTTCAM(model, fold_iterations=0)


class TestFoldInUser:
    def test_returns_valid_parameters(self, base):
        model, cuboid, _ = base
        rows = cuboid.entries_of_user(0)
        theta, lam = OnlineTTCAM(model).fold_in_user(
            cuboid.items[rows], cuboid.intervals[rows], cuboid.scores[rows]
        )
        assert theta.sum() == pytest.approx(1.0)
        assert 0.0 <= lam <= 1.0

    def test_recovers_existing_user_interest(self, base):
        """Folding in an existing user's history approximates the jointly
        fitted interest distribution."""
        model, cuboid, _ = base
        online = OnlineTTCAM(model, fold_iterations=30)
        active = np.argsort(-cuboid.user_activity())[:10]
        sims = []
        for user in active:
            rows = cuboid.entries_of_user(int(user))
            theta, _ = online.fold_in_user(
                cuboid.items[rows], cuboid.intervals[rows], cuboid.scores[rows]
            )
            fitted = model.params_.theta[int(user)]
            cos = float(
                theta @ fitted / (np.linalg.norm(theta) * np.linalg.norm(fitted) + 1e-12)
            )
            sims.append(cos)
        assert np.mean(sims) > 0.7

    def test_empty_ratings_returns_cold_start_prior(self, base):
        model, _, _ = base
        online = OnlineTTCAM(model)
        with pytest.warns(UserWarning, match="no ratings"):
            theta, lam = online.fold_in_user(np.array([]), np.array([]))
        k1 = model.params_.num_user_topics
        np.testing.assert_allclose(theta, np.full(k1, 1.0 / k1))
        assert lam == 0.5

    def test_validation(self, base):
        model, _, _ = base
        online = OnlineTTCAM(model)
        with pytest.raises(ValueError, match="aligned"):
            online.fold_in_user(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError, match="item ids"):
            online.fold_in_user(np.array([10_000]), np.array([0]))
        with pytest.raises(ValueError, match="interval ids"):
            online.fold_in_user(np.array([0]), np.array([10_000]))


class TestFoldInInterval:
    def test_returns_valid_context(self, base):
        model, cuboid, _ = base
        rows = cuboid.entries_of_interval(3)
        theta_t = OnlineTTCAM(model).fold_in_interval(
            cuboid.users[rows], cuboid.items[rows], cuboid.scores[rows]
        )
        assert theta_t.shape == (3,)
        assert theta_t.sum() == pytest.approx(1.0)

    def test_approximates_fitted_context(self, base):
        model, cuboid, _ = base
        online = OnlineTTCAM(model, fold_iterations=30)
        # Pick the busiest interval for a stable comparison.
        busiest = int(np.bincount(cuboid.intervals).argmax())
        rows = cuboid.entries_of_interval(busiest)
        theta_t = online.fold_in_interval(
            cuboid.users[rows], cuboid.items[rows], cuboid.scores[rows]
        )
        fitted = model.params_.theta_time[busiest]
        cos = float(
            theta_t @ fitted / (np.linalg.norm(theta_t) * np.linalg.norm(fitted) + 1e-12)
        )
        assert cos > 0.7

    def test_empty_ratings_returns_prior_context(self, base):
        model, _, _ = base
        online = OnlineTTCAM(model)
        with pytest.warns(UserWarning, match="no ratings"):
            theta_t = online.fold_in_interval(np.array([]), np.array([]))
        k2 = model.params_.num_time_topics
        np.testing.assert_allclose(theta_t, np.full(k2, 1.0 / k2))

    def test_validation(self, base):
        model, _, _ = base
        online = OnlineTTCAM(model)
        with pytest.raises(ValueError, match="user ids"):
            online.fold_in_interval(np.array([10_000]), np.array([0]))


class TestExtendAndColdStart:
    def test_extend_with_interval_appends(self, base):
        model, cuboid, _ = base
        online = OnlineTTCAM(model)
        before_t = online.params.num_intervals
        rows = cuboid.entries_of_interval(0)
        params = online.extend_with_interval(
            cuboid.users[rows], cuboid.items[rows], cuboid.scores[rows]
        )
        assert params.num_intervals == before_t + 1
        assert online.params.num_intervals == before_t + 1
        # Shared parameters untouched.
        np.testing.assert_array_equal(params.theta, model.params_.theta)

    def test_score_new_user(self, base):
        model, cuboid, _ = base
        online = OnlineTTCAM(model)
        rows = cuboid.entries_of_user(1)
        scores = online.score_new_user(
            cuboid.items[rows], cuboid.intervals[rows], query_interval=2
        )
        assert scores.shape == (model.params_.num_items,)
        assert scores.sum() == pytest.approx(1.0)


class TestStreamHardening:
    """Duplicate coalescing and out-of-order detection on fold-in batches."""

    def test_duplicate_user_events_coalesce_to_summed_scores(self, base):
        model, _, _ = base
        items = np.array([3, 3, 5])
        intervals = np.array([1, 1, 2])
        with pytest.warns(UserWarning, match="duplicate"):
            theta_dup, lam_dup = OnlineTTCAM(model).fold_in_user(
                items, intervals, np.array([1.0, 2.0, 1.0])
            )
        theta_sum, lam_sum = OnlineTTCAM(model).fold_in_user(
            np.array([3, 5]), np.array([1, 2]), np.array([3.0, 1.0])
        )
        np.testing.assert_array_equal(theta_dup, theta_sum)
        assert lam_dup == lam_sum

    def test_duplicate_interval_events_coalesce(self, base):
        model, _, _ = base
        with pytest.warns(UserWarning, match="duplicate"):
            dup = OnlineTTCAM(model).fold_in_interval(
                np.array([0, 0, 1]), np.array([2, 2, 4]), np.array([1.0, 1.5, 2.0])
            )
        merged = OnlineTTCAM(model).fold_in_interval(
            np.array([0, 1]), np.array([2, 4]), np.array([2.5, 2.0])
        )
        np.testing.assert_array_equal(dup, merged)

    def test_clean_batches_pass_through_unwarned_and_unchanged(self, base):
        model, cuboid, _ = base
        rows = cuboid.entries_of_user(2)
        import warnings as w

        with w.catch_warnings():
            w.simplefilter("error", UserWarning)
            theta, lam = OnlineTTCAM(model).fold_in_user(
                cuboid.items[rows], cuboid.intervals[rows], cuboid.scores[rows]
            )
        assert np.isfinite(theta).all() and 0.0 <= lam <= 1.0

    def test_out_of_order_intervals_warn_but_match_sorted_result(self, base):
        model, _, _ = base
        items = np.array([1, 2, 3])
        backwards = np.array([2, 1, 0])
        with pytest.warns(UserWarning, match="out-of-order"):
            theta_b, lam_b = OnlineTTCAM(model).fold_in_user(items, backwards)
        order = np.argsort(backwards, kind="stable")
        theta_s, lam_s = OnlineTTCAM(model).fold_in_user(
            items[order], backwards[order]
        )
        np.testing.assert_allclose(theta_b, theta_s)
        assert lam_b == pytest.approx(lam_s)

    def test_coalescing_keeps_first_occurrence_order(self, base):
        model, _, _ = base
        # (item, interval) pairs: dup of the *later* pair must not reorder.
        items = np.array([7, 2, 7])
        intervals = np.array([0, 1, 0])
        with pytest.warns(UserWarning, match="duplicate"):
            theta_dup, _ = OnlineTTCAM(model).fold_in_user(
                items, intervals, np.array([1.0, 1.0, 1.0])
            )
        theta_ref, _ = OnlineTTCAM(model).fold_in_user(
            np.array([7, 2]), np.array([0, 1]), np.array([2.0, 1.0])
        )
        np.testing.assert_array_equal(theta_dup, theta_ref)
