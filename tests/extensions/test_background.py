"""Tests for the background-smoothed TCAM extension."""

import numpy as np
import pytest

from repro.extensions.background import BackgroundTTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted():
    cuboid, truth = c.generate(c.tiny_config(noise_fraction=0.3, seed=8))
    model = BackgroundTTCAM(
        num_user_topics=4, num_time_topics=3, background_weight=0.15, max_iter=25, seed=0
    ).fit(cuboid)
    return model, cuboid, truth


class TestValidation:
    def test_rejects_bad_background_weight(self):
        with pytest.raises(ValueError):
            BackgroundTTCAM(background_weight=1.0)
        with pytest.raises(ValueError):
            BackgroundTTCAM(background_weight=-0.1)

    def test_rejects_bad_topic_counts(self):
        with pytest.raises(ValueError):
            BackgroundTTCAM(num_user_topics=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BackgroundTTCAM().score_items(0, 0)
        with pytest.raises(RuntimeError):
            BackgroundTTCAM().query_space(0, 0)


class TestFit:
    def test_log_likelihood_monotone(self, fitted):
        model, _, _ = fitted
        assert model.trace_.is_monotone(slack=1e-6)

    def test_parameters_stochastic(self, fitted):
        model, _, _ = fitted
        params = model.params_
        np.testing.assert_allclose(params.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi_time.sum(axis=1), 1.0)

    def test_background_fixed_to_popularity(self, fitted):
        model, cuboid, _ = fitted
        popularity = cuboid.item_popularity()
        np.testing.assert_allclose(model.background_, popularity / popularity.sum())


class TestScoring:
    def test_scores_form_distribution(self, fitted):
        model, _, _ = fitted
        scores = model.score_items(0, 1)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_query_space_matches_score_items(self, fitted):
        model, _, _ = fitted
        weights, matrix = model.query_space(3, 5)
        np.testing.assert_allclose(weights @ matrix, model.score_items(3, 5), atol=1e-12)

    def test_query_space_has_background_row(self, fitted):
        model, _, _ = fitted
        weights, matrix = model.query_space(0, 0)
        assert weights.shape == (4 + 3 + 1,)
        assert weights[-1] == pytest.approx(0.15)
        np.testing.assert_allclose(matrix[-1], model.background_)

    def test_matrix_cache_key_static(self, fitted):
        model, _, _ = fitted
        assert model.matrix_cache_key(0) == model.matrix_cache_key(7)

    def test_works_with_recommender(self, fitted):
        from repro.recommend import TemporalRecommender

        model, _, _ = fitted
        rec = TemporalRecommender(model)
        bf = rec.recommend(0, 0, k=5, method="bf")
        ta = rec.recommend(0, 0, k=5, method="ta")
        np.testing.assert_allclose(sorted(bf.scores), sorted(ta.scores), atol=1e-12)

    def test_name(self):
        assert BackgroundTTCAM().name == "BG-TTCAM"
