"""Tests for the social-influence extension."""

import numpy as np
import pytest

from repro.core.ttcam import TTCAM
from repro.extensions.social import (
    SocialTTCAM,
    add_social_ratings,
    adjacency_lists,
    build_homophilous_graph,
    social_interest,
)
import tests.conftest as c


@pytest.fixture(scope="module")
def social_world():
    cuboid, truth = c.generate(c.tiny_config(num_users=150, seed=31))
    graph = build_homophilous_graph(truth.theta, avg_degree=6, homophily=0.8, seed=1)
    augmented = add_social_ratings(cuboid, truth, graph, imitation_rate=0.5, seed=2)
    return cuboid, truth, graph, augmented


class TestGraph:
    def test_covers_all_users(self, social_world):
        _, truth, graph, _ = social_world
        assert graph.number_of_nodes() == truth.theta.shape[0]

    def test_degree_near_target(self, social_world):
        _, _, graph, _ = social_world
        degrees = [d for _n, d in graph.degree()]
        assert 3 <= np.mean(degrees) <= 10

    def test_homophily_makes_friends_similar(self, social_world):
        """Connected users' interests are more similar than random pairs."""
        _, truth, graph, _ = social_world
        theta = truth.theta
        norm = theta / (np.linalg.norm(theta, axis=1, keepdims=True) + 1e-12)
        sims = norm @ norm.T
        edge_sims = [sims[a, b] for a, b in graph.edges()]
        rng = np.random.default_rng(0)
        random_pairs = rng.integers(0, theta.shape[0], size=(2000, 2))
        random_sims = [sims[a, b] for a, b in random_pairs if a != b]
        assert np.mean(edge_sims) > np.mean(random_sims) + 0.05

    def test_validation(self, social_world):
        _, truth, _, _ = social_world
        with pytest.raises(ValueError):
            build_homophilous_graph(truth.theta, homophily=1.5)
        with pytest.raises(ValueError):
            build_homophilous_graph(truth.theta, avg_degree=1)

    def test_adjacency_lists_handle_missing_nodes(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, 1)
        lists = adjacency_lists(graph, 3)
        assert lists[0].tolist() == [1]
        assert lists[2].size == 0


class TestSocialInterest:
    def test_average_of_friends(self):
        theta = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        friends = [np.array([1, 2]), np.array([0]), np.array([], dtype=np.int64)]
        social = social_interest(theta, friends)
        np.testing.assert_allclose(social[0], [0.25, 0.75])
        np.testing.assert_allclose(social[1], [1.0, 0.0])
        # Isolated user falls back to own interest.
        np.testing.assert_allclose(social[2], theta[2])


class TestAddSocialRatings:
    def test_grows_dataset(self, social_world):
        cuboid, _, _, augmented = social_world
        assert augmented.nnz > cuboid.nnz
        assert augmented.shape == cuboid.shape

    def test_zero_rate_is_identity(self, social_world):
        cuboid, truth, graph, _ = social_world
        same = add_social_ratings(cuboid, truth, graph, imitation_rate=0.0)
        assert same is cuboid

    def test_negative_rate_rejected(self, social_world):
        cuboid, truth, graph, _ = social_world
        with pytest.raises(ValueError):
            add_social_ratings(cuboid, truth, graph, imitation_rate=-1.0)


class TestSocialTTCAM:
    def test_fit_monotone(self, social_world):
        _, _, graph, augmented = social_world
        model = SocialTTCAM(graph, 4, 3, max_iter=20, seed=0).fit(augmented)
        assert model.trace_.is_monotone(slack=1e-6)

    def test_influence_rows_normalised(self, social_world):
        _, _, graph, augmented = social_world
        model = SocialTTCAM(graph, 4, 3, max_iter=15, seed=0).fit(augmented)
        np.testing.assert_allclose(model.influence_.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(model.influence_ >= 0)

    def test_scores_form_distribution(self, social_world):
        _, _, graph, augmented = social_world
        model = SocialTTCAM(graph, 4, 3, max_iter=15, seed=0).fit(augmented)
        scores = model.score_items(0, 2)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_query_space_matches_score_items(self, social_world):
        _, _, graph, augmented = social_world
        model = SocialTTCAM(graph, 4, 3, max_iter=15, seed=0).fit(augmented)
        weights, matrix = model.query_space(3, 5)
        np.testing.assert_allclose(weights @ matrix, model.score_items(3, 5), atol=1e-12)

    def test_detects_social_influence(self, social_world):
        """Learned social weight is higher on imitation-augmented data
        than on the asocial original."""
        cuboid, _, graph, augmented = social_world
        asocial = SocialTTCAM(graph, 4, 3, max_iter=25, seed=0).fit(cuboid)
        social = SocialTTCAM(graph, 4, 3, max_iter=25, seed=0).fit(augmented)
        assert social.influence_[:, 1].mean() > asocial.influence_[:, 1].mean()

    def test_unfitted_raises(self, social_world):
        _, _, graph, _ = social_world
        with pytest.raises(RuntimeError):
            SocialTTCAM(graph).score_items(0, 0)

    def test_works_with_ta_engine(self, social_world):
        from repro.recommend import TemporalRecommender

        _, _, graph, augmented = social_world
        model = SocialTTCAM(graph, 4, 3, max_iter=15, seed=0).fit(augmented)
        rec = TemporalRecommender(model)
        bf = rec.recommend(0, 1, k=5, method="bf")
        ta = rec.recommend(0, 1, k=5, method="ta")
        np.testing.assert_allclose(sorted(bf.scores), sorted(ta.scores), atol=1e-12)
