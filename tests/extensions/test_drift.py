"""Tests for the time-evolving-interests extension."""

import numpy as np
import pytest

from repro.core.ttcam import TTCAM
from repro.extensions.drift import DriftTTCAM, drift_interests, generate_drifting
import tests.conftest as c


@pytest.fixture(scope="module")
def drifting_world():
    config = c.tiny_config(num_users=150, mean_ratings_per_user=35, seed=41)
    cuboid, truths, trajectory = generate_drifting(config, num_epochs=3, drift_rate=0.6)
    return config, cuboid, truths, trajectory


class TestDriftInterests:
    def test_shape_and_normalisation(self, rng):
        theta = rng.dirichlet(np.ones(4), size=10)
        path = drift_interests(theta, num_epochs=5, drift_rate=0.4, rng=rng)
        assert path.shape == (5, 10, 4)
        np.testing.assert_allclose(path.sum(axis=2), 1.0)
        np.testing.assert_allclose(path[0], theta)

    def test_zero_drift_is_constant(self, rng):
        theta = rng.dirichlet(np.ones(4), size=6)
        path = drift_interests(theta, num_epochs=4, drift_rate=0.0, rng=rng)
        for e in range(4):
            np.testing.assert_allclose(path[e], theta)

    def test_drift_increases_with_rate(self, rng):
        theta = rng.dirichlet(np.ones(4), size=50)
        slow = drift_interests(theta, 4, 0.1, np.random.default_rng(1))
        fast = drift_interests(theta, 4, 0.8, np.random.default_rng(1))
        slow_move = np.abs(slow[-1] - slow[0]).mean()
        fast_move = np.abs(fast[-1] - fast[0]).mean()
        assert fast_move > slow_move

    def test_validation(self, rng):
        theta = rng.dirichlet(np.ones(3), size=4)
        with pytest.raises(ValueError):
            drift_interests(theta, 0, 0.5, rng)
        with pytest.raises(ValueError):
            drift_interests(theta, 3, 1.5, rng)


class TestGenerateDrifting:
    def test_epochs_tile_the_timeline(self, drifting_world):
        config, cuboid, truths, trajectory = drifting_world
        assert cuboid.num_intervals == 3 * config.num_intervals
        assert len(truths) == 3
        assert trajectory.shape[0] == 3
        # Every epoch produced some data.
        epochs = cuboid.intervals // config.num_intervals
        assert set(np.unique(epochs)) == {0, 1, 2}

    def test_truths_carry_drifted_theta(self, drifting_world):
        _, _, truths, trajectory = drifting_world
        for e, truth in enumerate(truths):
            np.testing.assert_allclose(truth.theta, trajectory[e])


class TestDriftTTCAM:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftTTCAM(epoch_length=0)
        with pytest.raises(ValueError):
            DriftTTCAM(epoch_length=4, epoch_coupling=-1.0)
        with pytest.raises(RuntimeError):
            DriftTTCAM(epoch_length=4).score_items(0, 0)

    def test_fit_monotone(self, drifting_world):
        config, cuboid, _, _ = drifting_world
        model = DriftTTCAM(
            epoch_length=config.num_intervals, num_user_topics=4, num_time_topics=3,
            max_iter=20, seed=0,
        ).fit(cuboid)
        assert model.trace_.is_monotone(slack=1e-6)
        assert model.num_epochs_ == 3

    def test_scores_form_distribution(self, drifting_world):
        config, cuboid, _, _ = drifting_world
        model = DriftTTCAM(
            epoch_length=config.num_intervals, num_user_topics=4, num_time_topics=3,
            max_iter=15, seed=0,
        ).fit(cuboid)
        scores = model.score_items(0, 5)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        weights, matrix = model.query_space(0, 5)
        np.testing.assert_allclose(weights @ matrix, scores, atol=1e-12)

    def test_interest_trajectory_shape(self, drifting_world):
        config, cuboid, _, _ = drifting_world
        model = DriftTTCAM(
            epoch_length=config.num_intervals, num_user_topics=4, num_time_topics=3,
            max_iter=15, seed=0,
        ).fit(cuboid)
        path = model.interest_trajectory(2)
        assert path.shape == (3, 4)
        np.testing.assert_allclose(path.sum(axis=1), 1.0, atol=1e-9)

    def test_tracks_drift_better_than_static(self, drifting_world):
        """Per-epoch interests should track a user's drifting ground truth
        better than one static interest vector."""
        from repro.analysis.topics import match_topics

        config, cuboid, truths, trajectory = drifting_world
        drifty = DriftTTCAM(
            epoch_length=config.num_intervals, num_user_topics=4, num_time_topics=3,
            max_iter=40, seed=0,
        ).fit(cuboid)
        static = TTCAM(4, 3, max_iter=40, seed=0).fit(cuboid)

        # Align fitted user topics with the generator's topics.
        assignment, _ = match_topics(drifty.phi_, truths[0].phi)

        def epoch_correlation(theta_fit, epoch):
            """Mean per-user correlation with the true epoch interests."""
            true = trajectory[epoch]
            remapped = np.zeros_like(true)
            for fitted_z, true_z in enumerate(assignment):
                if true_z >= 0:
                    remapped[:, true_z] = theta_fit[:, fitted_z]
            rows = [
                np.corrcoef(remapped[u], true[u])[0, 1]
                for u in range(true.shape[0])
                if true[u].std() > 0 and remapped[u].std() > 0
            ]
            return float(np.mean(rows))

        drift_score = np.mean(
            [epoch_correlation(drifty.theta_[e], e) for e in range(3)]
        )
        assignment_static, _ = match_topics(static.params_.phi, truths[0].phi)
        assignment = assignment_static  # reuse helper with static mapping
        static_score = np.mean(
            [epoch_correlation(static.params_.theta, e) for e in range(3)]
        )
        assert drift_score > static_score

    def test_coupling_smooths_trajectories(self, drifting_world):
        config, cuboid, _, _ = drifting_world
        loose = DriftTTCAM(
            epoch_length=config.num_intervals, num_user_topics=4, num_time_topics=3,
            epoch_coupling=0.0, max_iter=25, seed=0,
        ).fit(cuboid)
        stiff = DriftTTCAM(
            epoch_length=config.num_intervals, num_user_topics=4, num_time_topics=3,
            epoch_coupling=2.0, max_iter=25, seed=0,
        ).fit(cuboid)

        def roughness(model):
            return float(np.abs(np.diff(model.theta_, axis=0)).mean())

        assert roughness(stiff) < roughness(loose)
