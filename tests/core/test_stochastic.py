"""Tests for stochastic (mini-batch) EM."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticTTCAM
from repro.core.ttcam import TTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def cuboid():
    cub, _ = c.generate(c.tiny_config(num_users=200, mean_ratings_per_user=35, seed=51))
    return cub


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StochasticTTCAM(num_user_topics=0)
        with pytest.raises(ValueError):
            StochasticTTCAM(batch_size=0)
        with pytest.raises(ValueError):
            StochasticTTCAM(num_epochs=0)
        with pytest.raises(ValueError):
            StochasticTTCAM(kappa=0.4)
        with pytest.raises(ValueError):
            StochasticTTCAM(kappa=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StochasticTTCAM().score_items(0, 0)


class TestFit:
    def test_likelihood_improves_across_epochs(self, cuboid):
        model = StochasticTTCAM(
            4, 3, batch_size=512, num_epochs=8, seed=0
        ).fit(cuboid)
        ll = model.trace_.log_likelihood
        assert len(ll) == 8
        assert ll[-1] > ll[0]

    def test_parameters_stochastic(self, cuboid):
        model = StochasticTTCAM(4, 3, batch_size=512, num_epochs=4, seed=0).fit(cuboid)
        params = model.params_
        np.testing.assert_allclose(params.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi_time.sum(axis=1), 1.0)
        assert np.all((params.lambda_u >= 0) & (params.lambda_u <= 1))

    def test_approaches_batch_em_likelihood(self, cuboid):
        """Stepwise EM should land within a few percent of batch EM."""
        batch = TTCAM(4, 3, max_iter=40, seed=0).fit(cuboid)
        stochastic = StochasticTTCAM(
            4, 3, batch_size=1024, num_epochs=25, kappa=0.6, seed=0
        ).fit(cuboid)
        batch_ll = batch.trace_.final_log_likelihood
        stochastic_ll = stochastic.trace_.log_likelihood[-1]
        assert stochastic_ll > batch_ll * 1.05  # LLs negative: within 5%

    def test_small_batches_still_work(self, cuboid):
        model = StochasticTTCAM(3, 2, batch_size=64, num_epochs=3, seed=0).fit(cuboid)
        assert np.isfinite(model.trace_.log_likelihood[-1])

    def test_reproducible(self, cuboid):
        m1 = StochasticTTCAM(3, 2, batch_size=256, num_epochs=2, seed=5).fit(cuboid)
        m2 = StochasticTTCAM(3, 2, batch_size=256, num_epochs=2, seed=5).fit(cuboid)
        np.testing.assert_array_equal(m1.params_.phi, m2.params_.phi)

    def test_weighted_variant(self, cuboid):
        model = StochasticTTCAM(
            3, 2, batch_size=512, num_epochs=3, weighted=True, seed=0
        ).fit(cuboid)
        assert model.name == "W-TTCAM(stochastic)"
        assert np.isfinite(model.trace_.log_likelihood[-1])


class TestScoring:
    def test_scores_and_query_space(self, cuboid):
        model = StochasticTTCAM(4, 3, batch_size=512, num_epochs=4, seed=0).fit(cuboid)
        scores = model.score_items(0, 2)
        assert scores.sum() == pytest.approx(1.0)
        weights, matrix = model.query_space(0, 2)
        np.testing.assert_allclose(weights @ matrix, scores, atol=1e-12)
        assert model.matrix_cache_key(0) == model.matrix_cache_key(5)

    def test_usable_for_recommendation(self, cuboid):
        from repro.recommend import TemporalRecommender

        model = StochasticTTCAM(4, 3, batch_size=512, num_epochs=4, seed=0).fit(cuboid)
        rec = TemporalRecommender(model)
        bf = rec.recommend(0, 1, k=5, method="bf")
        ta = rec.recommend(0, 1, k=5, method="ta")
        np.testing.assert_allclose(sorted(bf.scores), sorted(ta.scores), atol=1e-12)
