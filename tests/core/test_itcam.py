"""Tests for the ITCAM model."""

import numpy as np
import pytest

from repro.core.itcam import ITCAM


@pytest.fixture(scope="module")
def fitted(request):
    import tests.conftest as c

    cuboid, _ = c.generate(c.tiny_config())
    model = ITCAM(num_user_topics=4, max_iter=25, seed=0)
    model.fit(cuboid)
    return model, cuboid


class TestValidation:
    def test_rejects_bad_topic_count(self):
        with pytest.raises(ValueError):
            ITCAM(num_user_topics=0)

    def test_rejects_bad_max_iter(self):
        with pytest.raises(ValueError):
            ITCAM(max_iter=0)

    def test_rejects_negative_smoothing(self):
        with pytest.raises(ValueError):
            ITCAM(smoothing=-1.0)

    def test_unfitted_scoring_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ITCAM().score_items(0, 0)

    def test_empty_cuboid_rejected(self):
        from repro.data.cuboid import RatingCuboid

        empty = RatingCuboid.from_arrays([], [], [], num_users=1, num_intervals=1, num_items=1)
        with pytest.raises(ValueError):
            ITCAM(num_user_topics=2).fit(empty)


class TestFit:
    def test_log_likelihood_monotone(self, fitted):
        model, _ = fitted
        assert model.trace_.is_monotone(slack=1e-6)

    def test_log_likelihood_improves(self, fitted):
        model, _ = fitted
        ll = model.trace_.log_likelihood
        assert ll[-1] > ll[0]

    def test_parameters_are_stochastic(self, fitted):
        model, _ = fitted
        params = model.params_
        np.testing.assert_allclose(params.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.theta_time.sum(axis=1), 1.0)
        assert np.all((params.lambda_u >= 0) & (params.lambda_u <= 1))

    def test_dimensions(self, fitted):
        model, cuboid = fitted
        params = model.params_
        assert params.theta.shape == (cuboid.num_users, 4)
        assert params.phi.shape == (4, cuboid.num_items)
        assert params.theta_time.shape == (cuboid.num_intervals, cuboid.num_items)

    def test_reproducible_by_seed(self):
        import tests.conftest as c

        cuboid, _ = c.generate(c.tiny_config())
        m1 = ITCAM(num_user_topics=3, max_iter=10, seed=7).fit(cuboid)
        m2 = ITCAM(num_user_topics=3, max_iter=10, seed=7).fit(cuboid)
        np.testing.assert_array_equal(m1.params_.theta, m2.params_.theta)

    def test_name_reflects_weighting(self):
        assert ITCAM().name == "ITCAM"
        assert ITCAM(weighted=True).name == "W-ITCAM"

    def test_weighted_variant_fits(self):
        import tests.conftest as c

        cuboid, _ = c.generate(c.tiny_config())
        model = ITCAM(num_user_topics=3, max_iter=15, weighted=True, seed=0).fit(cuboid)
        assert model.trace_.is_monotone(slack=1e-6)


class TestScoring:
    def test_scores_form_distribution(self, fitted):
        model, _ = fitted
        scores = model.score_items(0, 0)
        assert scores.shape == (model.params_.num_items,)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_query_space_matches_score_items(self, fitted):
        model, cuboid = fitted
        for user, interval in [(0, 0), (3, 5), (10, 11)]:
            weights, matrix = model.query_space(user, interval)
            np.testing.assert_allclose(
                weights @ matrix, model.score_items(user, interval), atol=1e-12
            )

    def test_query_space_has_k1_plus_one_dims(self, fitted):
        model, _ = fitted
        weights, matrix = model.query_space(0, 0)
        assert weights.shape == (5,)  # K1 + 1 temporal dimension
        assert matrix.shape[0] == 5

    def test_matrix_cache_key_is_interval(self, fitted):
        model, _ = fitted
        assert model.matrix_cache_key(3) == 3
        assert model.matrix_cache_key(4) != model.matrix_cache_key(3)

    def test_held_out_log_likelihood_finite(self, fitted):
        model, cuboid = fitted
        ll = model.log_likelihood(cuboid)
        assert np.isfinite(ll)
        assert ll < 0


class TestRecovery:
    def test_lambda_tracks_time_sensitivity(self):
        """Context-heavy data yields lower fitted λ than interest-heavy data."""
        import tests.conftest as c

        ctx_cub, _ = c.generate(c.tiny_config(lambda_alpha=1.0, lambda_beta=6.0, seed=11))
        int_cub, _ = c.generate(
            c.tiny_config(lambda_alpha=6.0, lambda_beta=1.0, item_lifecycle=float("inf"), seed=11)
        )
        m_ctx = ITCAM(num_user_topics=4, max_iter=30, seed=0).fit(ctx_cub)
        m_int = ITCAM(num_user_topics=4, max_iter=30, seed=0).fit(int_cub)
        assert m_ctx.params_.lambda_u.mean() < m_int.params_.lambda_u.mean()
