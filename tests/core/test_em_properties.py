"""Property-based tests for EM helpers and the weighting scheme."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.em import normalize_rows, scatter_sum
from repro.core.weighting import bursty_degree, compute_item_weights, inverse_user_frequency
from repro.data.cuboid import RatingCuboid


finite_matrix = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 8)),
    elements=st.floats(0.0, 100.0, allow_nan=False),
)


class TestNormalizeRowsProperties:
    @settings(max_examples=100, deadline=None)
    @given(finite_matrix)
    def test_output_is_row_stochastic(self, matrix):
        out = normalize_rows(matrix.copy())
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(out >= 0)

    @settings(max_examples=100, deadline=None)
    @given(finite_matrix, st.floats(1e-9, 1.0))
    def test_smoothing_keeps_strict_positivity(self, matrix, smoothing):
        out = normalize_rows(matrix.copy(), smoothing=smoothing)
        assert np.all(out > 0)

    @settings(max_examples=100, deadline=None)
    @given(finite_matrix, st.floats(0.1, 10.0))
    def test_scale_invariance(self, matrix, scale):
        # Rows whose mass is at the EPS threshold intentionally become
        # uniform (the zero-mass fallback), and a scale factor can move
        # such a row across the threshold — invariance is only promised
        # for rows with non-negligible mass.
        assume(bool(np.all(matrix.sum(axis=1) * min(scale, 1.0) > 1e-9)))
        base = normalize_rows(matrix.copy())
        scaled = normalize_rows(matrix.copy() * scale)
        np.testing.assert_allclose(base, scaled, atol=1e-9)


class TestScatterSumProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 10),
        st.integers(0, 50),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    def test_linearity_and_mass(self, bins, rows, cols, seed):
        rng = np.random.default_rng(seed)
        index = rng.integers(0, bins, size=rows)
        values = rng.random((rows, cols))
        out = scatter_sum(index, values, bins)
        assert np.isclose(out.sum(), values.sum())
        doubled = scatter_sum(index, 2 * values, bins)
        np.testing.assert_allclose(doubled, 2 * out)


@st.composite
def small_cuboid(draw):
    n = draw(st.integers(2, 8))
    t = draw(st.integers(1, 5))
    v = draw(st.integers(2, 8))
    size = draw(st.integers(1, 40))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    return RatingCuboid.from_arrays(
        rng.integers(0, n, size),
        rng.integers(0, t, size),
        rng.integers(0, v, size),
        num_users=n,
        num_intervals=t,
        num_items=v,
    )


class TestWeightingProperties:
    @settings(max_examples=80, deadline=None)
    @given(small_cuboid())
    def test_iuf_non_negative_and_bounded(self, cub):
        iuf = inverse_user_frequency(cub)
        assert np.all(iuf >= -1e-12)
        assert np.all(iuf <= np.log(cub.num_users) + 1e-12)

    @settings(max_examples=80, deadline=None)
    @given(small_cuboid())
    def test_burst_non_negative_finite(self, cub):
        burst = bursty_degree(cub)
        assert np.all(burst >= 0)
        assert np.all(np.isfinite(burst))

    @settings(max_examples=80, deadline=None)
    @given(small_cuboid())
    def test_burst_zero_exactly_on_unobserved_cells(self, cub):
        burst = bursty_degree(cub)
        observed = cub.item_interval_user_counts() > 0
        # Unobserved (t, v) cells carry no burst.
        assert np.all(burst[~observed] == 0)

    @settings(max_examples=80, deadline=None)
    @given(small_cuboid())
    def test_weight_matrix_consistent(self, cub):
        weights = compute_item_weights(cub)
        matrix = weights.weight_matrix()
        for t in range(cub.num_intervals):
            for v in range(cub.num_items):
                assert np.isclose(matrix[t, v], weights.weight(v, t))
