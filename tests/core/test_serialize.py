"""Tests for model persistence."""

import numpy as np
import pytest

from repro.core.itcam import ITCAM
from repro.core.serialize import LoadedModel, load_params, save_params
from repro.core.ttcam import TTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted_models():
    cuboid, _ = c.generate(c.tiny_config())
    ttcam = TTCAM(4, 3, max_iter=15, seed=0).fit(cuboid)
    itcam = ITCAM(4, max_iter=15, seed=0).fit(cuboid)
    return cuboid, ttcam, itcam


class TestRoundTrip:
    def test_ttcam_round_trip(self, fitted_models, tmp_path):
        _, ttcam, _ = fitted_models
        path = save_params(ttcam.params_, tmp_path / "model.npz")
        loaded = load_params(path)
        np.testing.assert_array_equal(loaded.theta, ttcam.params_.theta)
        np.testing.assert_array_equal(loaded.phi_time, ttcam.params_.phi_time)
        np.testing.assert_array_equal(loaded.lambda_u, ttcam.params_.lambda_u)

    def test_itcam_round_trip(self, fitted_models, tmp_path):
        _, _, itcam = fitted_models
        path = save_params(itcam.params_, tmp_path / "model.npz")
        loaded = load_params(path)
        np.testing.assert_array_equal(loaded.theta_time, itcam.params_.theta_time)

    def test_suffix_appended(self, fitted_models, tmp_path):
        _, ttcam, _ = fitted_models
        path = save_params(ttcam.params_, tmp_path / "snapshot")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_scores_identical(self, fitted_models, tmp_path):
        _, ttcam, _ = fitted_models
        path = save_params(ttcam.params_, tmp_path / "model.npz")
        loaded = load_params(path)
        for user, interval in [(0, 0), (5, 7)]:
            np.testing.assert_array_equal(
                loaded.score_items(user, interval),
                ttcam.params_.score_items(user, interval),
            )


class TestErrors:
    def test_unsupported_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_params(object(), tmp_path / "bad.npz")

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(ValueError, match="not a TCAM"):
            load_params(path)

    def test_corrupted_parameters_rejected(self, fitted_models, tmp_path):
        _, ttcam, _ = fitted_models
        params = ttcam.params_
        path = tmp_path / "tampered.npz"
        np.savez(
            path,
            tcam_format=np.array("ttcam-v1"),
            theta=params.theta * 2,  # no longer stochastic
            phi=params.phi,
            theta_time=params.theta_time,
            phi_time=params.phi_time,
            lambda_u=params.lambda_u,
        )
        with pytest.raises(ValueError, match="not normalised"):
            load_params(path)


class TestLoadedModel:
    def test_serves_through_recommender(self, fitted_models, tmp_path):
        from repro.recommend import TemporalRecommender

        _, ttcam, _ = fitted_models
        path = save_params(ttcam.params_, tmp_path / "serve.npz")
        model = LoadedModel.from_file(path)
        assert model.name == "Loaded-TTCAM"
        rec_live = TemporalRecommender(ttcam)
        rec_snap = TemporalRecommender(model)
        live = rec_live.recommend(2, 3, k=5, method="ta")
        snap = rec_snap.recommend(2, 3, k=5, method="ta")
        assert live.items == snap.items

    def test_itcam_cache_key(self, fitted_models, tmp_path):
        _, _, itcam = fitted_models
        path = save_params(itcam.params_, tmp_path / "it.npz")
        model = LoadedModel.from_file(path)
        assert model.name == "Loaded-ITCAM"
        assert model.matrix_cache_key(2) == 2
