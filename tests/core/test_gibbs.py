"""Tests for the collapsed Gibbs sampler."""

import numpy as np
import pytest

from repro.core.gibbs import GibbsTTCAM
from repro.core.ttcam import TTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def small_world():
    config = c.tiny_config(
        num_users=80,
        num_items=60,
        mean_ratings_per_user=25,
        num_user_topics=3,
        seed=71,
    )
    return c.generate(config)


@pytest.fixture(scope="module")
def fitted(small_world):
    cuboid, truth = small_world
    model = GibbsTTCAM(
        num_user_topics=3,
        num_time_topics=3,
        num_samples=12,
        burn_in=6,
        seed=0,
    ).fit(cuboid)
    return model, cuboid, truth


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GibbsTTCAM(num_user_topics=0)
        with pytest.raises(ValueError):
            GibbsTTCAM(alpha=0)
        with pytest.raises(ValueError):
            GibbsTTCAM(num_samples=0)
        with pytest.raises(ValueError):
            GibbsTTCAM(burn_in=-1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GibbsTTCAM().score_items(0, 0)


class TestFit:
    def test_posterior_parameters_valid(self, fitted):
        model, _, _ = fitted
        params = model.params_
        np.testing.assert_allclose(params.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi_time.sum(axis=1), 1.0)
        assert np.all((params.lambda_u > 0) & (params.lambda_u < 1))

    def test_assignments_cover_entries(self, fitted):
        model, cuboid, _ = fitted
        assert model.assignments_.shape == (cuboid.nnz,)
        assert model.assignments_.min() >= 0
        assert model.assignments_.max() < 3 + 3

    def test_deterministic_by_seed(self, small_world):
        cuboid, _ = small_world
        m1 = GibbsTTCAM(2, 2, num_samples=3, burn_in=1, seed=4).fit(cuboid)
        m2 = GibbsTTCAM(2, 2, num_samples=3, burn_in=1, seed=4).fit(cuboid)
        np.testing.assert_array_equal(m1.params_.theta, m2.params_.theta)

    def test_scores_form_distribution(self, fitted):
        model, _, _ = fitted
        scores = model.score_items(0, 2)
        assert scores.sum() == pytest.approx(1.0)
        weights, matrix = model.query_space(0, 2)
        np.testing.assert_allclose(weights @ matrix, scores, atol=1e-12)


class TestAgreementWithEM:
    def test_beats_uniform_perplexity(self, small_world):
        from repro.data import holdout_split
        from repro.evaluation import heldout_perplexity, uniform_perplexity

        cuboid, _ = small_world
        split = holdout_split(cuboid, seed=0)
        model = GibbsTTCAM(3, 3, num_samples=12, burn_in=6, seed=0).fit(split.train)
        assert heldout_perplexity(model, split.test) < uniform_perplexity(split.test)

    def test_comparable_to_em_on_heldout(self, small_world):
        """The Bayesian fit should land in the same quality region as EM
        (within 25% relative held-out perplexity)."""
        from repro.data import holdout_split
        from repro.evaluation import heldout_perplexity

        cuboid, _ = small_world
        split = holdout_split(cuboid, seed=0)
        gibbs = GibbsTTCAM(3, 3, num_samples=12, burn_in=8, seed=0).fit(split.train)
        em = TTCAM(3, 3, max_iter=40, smoothing=1e-3, seed=0).fit(split.train)
        p_gibbs = heldout_perplexity(gibbs, split.test)
        p_em = heldout_perplexity(em, split.test)
        assert p_gibbs < p_em * 1.25

    def test_context_dominance_recovered(self, small_world):
        """On context-heavy data the sampler's λ should be low, like EM's."""
        cuboid, truth = small_world
        model = GibbsTTCAM(3, 3, num_samples=10, burn_in=5, seed=0).fit(cuboid)
        em = TTCAM(3, 3, max_iter=30, seed=0).fit(cuboid)
        assert abs(model.params_.lambda_u.mean() - em.params_.lambda_u.mean()) < 0.35
