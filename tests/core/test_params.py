"""Tests for the fitted-parameter containers."""

import numpy as np
import pytest

from repro.core.params import ITCAMParameters, TTCAMParameters


def uniform(rows, cols):
    return np.full((rows, cols), 1.0 / cols)


def make_itcam(n=4, k1=3, t=5, v=6):
    return ITCAMParameters(
        theta=uniform(n, k1),
        phi=uniform(k1, v),
        theta_time=uniform(t, v),
        lambda_u=np.full(n, 0.5),
    )


def make_ttcam(n=4, k1=3, k2=2, t=5, v=6):
    return TTCAMParameters(
        theta=uniform(n, k1),
        phi=uniform(k1, v),
        theta_time=uniform(t, k2),
        phi_time=uniform(k2, v),
        lambda_u=np.full(n, 0.5),
    )


class TestValidation:
    def test_itcam_accepts_valid(self):
        params = make_itcam()
        assert params.num_users == 4
        assert params.num_items == 6
        assert params.num_intervals == 5
        assert params.num_user_topics == 3

    def test_rejects_unnormalised_rows(self):
        theta = uniform(4, 3)
        theta[0] *= 2
        with pytest.raises(ValueError, match="not normalised"):
            ITCAMParameters(
                theta=theta,
                phi=uniform(3, 6),
                theta_time=uniform(5, 6),
                lambda_u=np.full(4, 0.5),
            )

    def test_rejects_negative_probabilities(self):
        phi = uniform(3, 6)
        phi[0, 0] = -0.1
        phi[0, 1] += 0.1 + 1.0 / 6
        phi[0] /= phi[0].sum()
        with pytest.raises(ValueError, match="negative"):
            ITCAMParameters(
                theta=uniform(4, 3),
                phi=phi,
                theta_time=uniform(5, 6),
                lambda_u=np.full(4, 0.5),
            )

    def test_rejects_lambda_outside_unit(self):
        with pytest.raises(ValueError, match="lambda"):
            ITCAMParameters(
                theta=uniform(4, 3),
                phi=uniform(3, 6),
                theta_time=uniform(5, 6),
                lambda_u=np.array([0.5, 1.5, 0.5, 0.5]),
            )

    def test_rejects_dimension_mismatches(self):
        with pytest.raises(ValueError, match="disagree"):
            ITCAMParameters(
                theta=uniform(4, 3),
                phi=uniform(2, 6),  # K mismatch
                theta_time=uniform(5, 6),
                lambda_u=np.full(4, 0.5),
            )
        with pytest.raises(ValueError, match="disagree"):
            TTCAMParameters(
                theta=uniform(4, 3),
                phi=uniform(3, 6),
                theta_time=uniform(5, 2),
                phi_time=uniform(2, 7),  # item-dim mismatch
                lambda_u=np.full(4, 0.5),
            )


class TestScoring:
    def test_itcam_mixture_formula(self):
        params = make_itcam()
        scores = params.score_items(0, 0)
        # Uniform everything → uniform scores.
        np.testing.assert_allclose(scores, 1.0 / 6)

    def test_itcam_lambda_extremes(self):
        params = make_itcam()
        params.lambda_u[0] = 1.0
        np.testing.assert_allclose(params.score_items(0, 0), params.interest_scores(0))
        params.lambda_u[1] = 0.0
        np.testing.assert_allclose(params.score_items(1, 2), params.context_scores(2))

    def test_ttcam_context_via_topics(self):
        params = make_ttcam()
        np.testing.assert_allclose(params.context_scores(0).sum(), 1.0)

    def test_query_space_reproduces_scores(self):
        for params in (make_itcam(), make_ttcam()):
            weights, matrix = params.query_space(1, 2)
            np.testing.assert_allclose(weights @ matrix, params.score_items(1, 2))

    def test_ttcam_query_weights_sum_to_one(self):
        params = make_ttcam()
        weights, _ = params.query_space(0, 0)
        assert weights.sum() == pytest.approx(1.0)
