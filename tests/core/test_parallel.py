"""Tests for the partitioned (MapReduce-style) EM."""

import numpy as np
import pytest

from repro.core.parallel import PartitionedTTCAM
from repro.core.ttcam import TTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def cuboid():
    cub, _ = c.generate(c.tiny_config())
    return cub


class TestEquivalence:
    def test_matches_serial_fit(self, cuboid):
        serial = TTCAM(3, 3, max_iter=15, seed=4).fit(cuboid)
        partitioned = PartitionedTTCAM(
            3, 3, max_iter=15, seed=4, num_partitions=4
        ).fit(cuboid)
        np.testing.assert_allclose(
            partitioned.params_.theta, serial.params_.theta, atol=1e-9
        )
        np.testing.assert_allclose(
            partitioned.params_.phi_time, serial.params_.phi_time, atol=1e-9
        )
        np.testing.assert_allclose(
            partitioned.params_.lambda_u, serial.params_.lambda_u, atol=1e-9
        )

    def test_partition_count_does_not_change_result(self, cuboid):
        one = PartitionedTTCAM(3, 3, max_iter=10, seed=1, num_partitions=1).fit(cuboid)
        many = PartitionedTTCAM(3, 3, max_iter=10, seed=1, num_partitions=7).fit(cuboid)
        np.testing.assert_allclose(one.params_.theta, many.params_.theta, atol=1e-9)

    def test_threaded_matches_sequential(self, cuboid):
        seq = PartitionedTTCAM(3, 3, max_iter=8, seed=2, num_partitions=4, workers=1).fit(cuboid)
        par = PartitionedTTCAM(3, 3, max_iter=8, seed=2, num_partitions=4, workers=4).fit(cuboid)
        np.testing.assert_allclose(seq.params_.theta, par.params_.theta, atol=1e-9)

    def test_log_likelihood_matches_serial(self, cuboid):
        serial = TTCAM(3, 3, max_iter=10, seed=4).fit(cuboid)
        partitioned = PartitionedTTCAM(3, 3, max_iter=10, seed=4, num_partitions=3).fit(cuboid)
        np.testing.assert_allclose(
            partitioned.trace_.log_likelihood,
            serial.trace_.log_likelihood,
            rtol=1e-9,
        )


class TestBehaviour:
    def test_more_partitions_than_entries(self):
        from repro.data.cuboid import RatingCuboid

        small = RatingCuboid.from_arrays([0, 1, 0], [0, 1, 1], [0, 1, 2])
        model = PartitionedTTCAM(2, 2, max_iter=5, num_partitions=10).fit(small)
        assert model.params_ is not None

    def test_scoring_api(self, cuboid):
        model = PartitionedTTCAM(3, 3, max_iter=5, num_partitions=2).fit(cuboid)
        scores = model.score_items(0, 0)
        assert scores.sum() == pytest.approx(1.0)
        weights, matrix = model.query_space(0, 0)
        np.testing.assert_allclose(weights @ matrix, scores, atol=1e-12)
        assert model.matrix_cache_key(0) == model.matrix_cache_key(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedTTCAM(num_partitions=0)
        with pytest.raises(ValueError):
            PartitionedTTCAM(workers=0)
        with pytest.raises(RuntimeError):
            PartitionedTTCAM().score_items(0, 0)

    def test_name(self):
        assert "partitioned" in PartitionedTTCAM().name
        assert PartitionedTTCAM(weighted=True).name.startswith("W-")
