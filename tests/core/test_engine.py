"""Tests of the blocked, thread-parallel EM execution engine.

Two contracts are pinned (see the :mod:`repro.core.engine` docstring):

* versus the legacy single-pass path (``engine=None``) the engine agrees
  to ``allclose(atol=1e-12)`` — blocking re-associates floating-point
  sums, so bit-identity across the two paths is not promised;
* for a **fixed** configuration the engine is bit-deterministic, across
  repeated calls, fresh engine instances, and thread counts ≥ 1 with the
  same block→worker grid — and therefore under checkpoint/resume.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ITCAM, TTCAM, PartitionedTTCAM
from repro.core.engine import (
    DEFAULT_BLOCK_SIZE,
    BlockedEStep,
    EMEngineConfig,
    TTCAMKernel,
)
from repro.core.em import EPS, scatter_sum, scatter_sum_1d
from repro.baselines import TimeTopicModel, UserTopicModel
from repro.robustness import CheckpointManager, FaultInjector, InjectedFault

ATOL = 1e-12


class TestEMEngineConfig:
    def test_defaults(self):
        config = EMEngineConfig()
        assert config.block_size is None
        assert config.threads == 1
        assert config.dtype == "float64"

    @pytest.mark.parametrize("block_size", [0, -1])
    def test_nonpositive_block_size_rejected(self, block_size):
        with pytest.raises(ValueError, match="block_size"):
            EMEngineConfig(block_size=block_size)

    @pytest.mark.parametrize("threads", [0, -2])
    def test_nonpositive_threads_rejected(self, threads):
        with pytest.raises(ValueError, match="threads"):
            EMEngineConfig(threads=threads)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            EMEngineConfig(dtype="float16")

    def test_resolved_block_size_default_caps_at_dataset(self):
        config = EMEngineConfig()
        assert config.resolved_block_size(100) == 100
        assert config.resolved_block_size(10**9) == DEFAULT_BLOCK_SIZE

    def test_resolved_block_size_explicit(self):
        assert EMEngineConfig(block_size=64).resolved_block_size(1000) == 64
        assert EMEngineConfig(block_size=64).resolved_block_size(10) == 10


def _random_problem(seed, num_ratings):
    """Random triples + a random valid TTCAM state."""
    rng = np.random.default_rng(seed)
    n, t_dim, v_dim, k1, k2 = 11, 5, 17, 3, 4
    u = rng.integers(0, n, num_ratings)
    t = rng.integers(0, t_dim, num_ratings)
    v = rng.integers(0, v_dim, num_ratings)
    c = rng.random(num_ratings) + 0.25
    state = {
        "theta": rng.dirichlet(np.ones(k1), size=n),
        "phi": rng.dirichlet(np.ones(v_dim), size=k1),
        "theta_time": rng.dirichlet(np.ones(k2), size=t_dim),
        "phi_time": rng.dirichlet(np.ones(v_dim), size=k2),
        "lambda_u": rng.random(n),
    }
    return (u, t, v, c), (n, t_dim, v_dim), (k1, k2), state


def _reference_estep(triples, shape, topics, state):
    """Single-pass TTCAM E-step, written independently of the engine."""
    u, t, v, c = triples
    n, t_dim, v_dim = shape
    joint_z = state["theta"][u] * state["phi"][:, v].T
    p_int = joint_z.sum(axis=1)
    joint_x = state["theta_time"][t] * state["phi_time"][:, v].T
    p_ctx = joint_x.sum(axis=1)
    lam = state["lambda_u"][u]
    denom = lam * p_int + (1 - lam) * p_ctx + EPS
    ps1 = lam * p_int / denom
    c_resp_z = c[:, None] * joint_z * (ps1 / (p_int + EPS))[:, None]
    c_resp_x = c[:, None] * joint_x * ((1 - ps1) / (p_ctx + EPS))[:, None]
    stats = {
        "theta_num": scatter_sum(u, c_resp_z, n),
        "phi_num": scatter_sum(v, c_resp_z, v_dim),
        "theta_time_num": scatter_sum(t, c_resp_x, t_dim),
        "phi_time_num": scatter_sum(v, c_resp_x, v_dim),
        "lam_num": scatter_sum_1d(u, c * ps1, n),
    }
    return stats, float(np.dot(c, np.log(denom)))


def _engine_estep(triples, shape, topics, state, config):
    kernel = TTCAMKernel(*triples, shape, *topics, dtype=config.dtype)
    return BlockedEStep(kernel, config).compute(state)


class TestBlockedEquivalence:
    """Property: blocked/threaded statistics match the single-pass
    reference for any block grid — blocks smaller than, equal to and
    larger than R, R not divisible by the block size, any thread count."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_ratings=st.integers(1, 400),
        block_size=st.one_of(st.none(), st.integers(1, 500)),
        threads=st.integers(1, 5),
    )
    def test_matches_reference(self, seed, num_ratings, block_size, threads):
        triples, shape, topics, state = _random_problem(seed, num_ratings)
        expected, expected_ll = _reference_estep(triples, shape, topics, state)
        config = EMEngineConfig(block_size=block_size, threads=threads)
        stats, ll = _engine_estep(triples, shape, topics, state, config)
        assert ll == pytest.approx(expected_ll, abs=1e-9)
        for name, array in expected.items():
            np.testing.assert_allclose(
                stats[name], array, rtol=0, atol=ATOL, err_msg=name
            )

    @pytest.mark.parametrize(
        "block_size",
        [1, 7, 100, 250, 251, 1000],  # < R, R-not-divisible, = R, > R
    )
    def test_block_grid_edge_cases(self, block_size):
        triples, shape, topics, state = _random_problem(3, 250)
        expected, _ = _reference_estep(triples, shape, topics, state)
        config = EMEngineConfig(block_size=block_size, threads=3)
        stats, _ = _engine_estep(triples, shape, topics, state, config)
        for name, array in expected.items():
            np.testing.assert_allclose(
                stats[name], array, rtol=0, atol=ATOL, err_msg=name
            )

    def test_zero_ratings_rejected(self):
        triples, shape, topics, _ = _random_problem(0, 1)
        empty = tuple(arr[:0] for arr in triples)
        kernel = TTCAMKernel(*empty, shape, *topics)
        with pytest.raises(ValueError, match="zero ratings"):
            BlockedEStep(kernel, EMEngineConfig())


class TestDeterminism:
    def test_repeated_compute_is_bit_identical(self):
        triples, shape, topics, state = _random_problem(9, 300)
        config = EMEngineConfig(block_size=64, threads=3)
        kernel = TTCAMKernel(*triples, shape, *topics)
        estep = BlockedEStep(kernel, config)
        first, ll1 = estep.compute(state)
        first = {name: array.copy() for name, array in first.items()}
        second, ll2 = estep.compute(state)
        assert ll1 == ll2
        for name, array in first.items():
            np.testing.assert_array_equal(array, second[name], err_msg=name)

    def test_fresh_engine_is_bit_identical(self):
        triples, shape, topics, state = _random_problem(9, 300)
        config = EMEngineConfig(block_size=64, threads=4)
        a, ll_a = _engine_estep(triples, shape, topics, state, config)
        b, ll_b = _engine_estep(triples, shape, topics, state, config)
        assert ll_a == ll_b
        for name in a:
            np.testing.assert_array_equal(a[name], b[name], err_msg=name)


def _assert_params_close(a, b, atol=ATOL):
    for name in ("theta", "phi", "theta_time", "phi_time", "lambda_u"):
        left, right = getattr(a, name, None), getattr(b, name, None)
        if left is not None and right is not None:
            np.testing.assert_allclose(left, right, rtol=0, atol=atol, err_msg=name)


ENGINE = EMEngineConfig(block_size=500, threads=2)


class TestFittedModelEquivalence:
    """Full fits through the engine agree with the legacy path."""

    def test_ttcam(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda engine: TTCAM(
            num_user_topics=3, num_time_topics=3, max_iter=12, seed=7, engine=engine
        )
        legacy = make(None).fit(cuboid)
        blocked = make(ENGINE).fit(cuboid)
        _assert_params_close(legacy.params_, blocked.params_)
        np.testing.assert_allclose(
            legacy.trace_.log_likelihood, blocked.trace_.log_likelihood, rtol=1e-12
        )

    def test_ttcam_global_lambda(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda engine: TTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=10,
            seed=7,
            personalized_lambda=False,
            engine=engine,
        )
        _assert_params_close(
            make(None).fit(cuboid).params_, make(ENGINE).fit(cuboid).params_
        )

    def test_itcam(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda engine: ITCAM(
            num_user_topics=3, max_iter=12, seed=3, engine=engine
        )
        legacy = make(None).fit(cuboid)
        blocked = make(ENGINE).fit(cuboid)
        np.testing.assert_allclose(
            legacy.params_.theta, blocked.params_.theta, rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            legacy.params_.phi, blocked.params_.phi, rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            legacy.params_.theta_time, blocked.params_.theta_time, rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            legacy.params_.lambda_u, blocked.params_.lambda_u, rtol=0, atol=ATOL
        )

    @pytest.mark.parametrize(
        "model_cls, attrs",
        [
            (UserTopicModel, ("theta_", "phi_")),
            (TimeTopicModel, ("theta_time_", "phi_time_")),
        ],
    )
    def test_baselines(self, tiny_cuboid, model_cls, attrs):
        cuboid, _ = tiny_cuboid
        make = lambda engine: model_cls(num_topics=4, max_iter=12, seed=5, engine=engine)
        legacy = make(None).fit(cuboid)
        blocked = make(ENGINE).fit(cuboid)
        for name in attrs:
            np.testing.assert_allclose(
                getattr(legacy, name), getattr(blocked, name), rtol=0, atol=ATOL,
                err_msg=name,
            )

    def test_partitioned_ttcam(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda engine: PartitionedTTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=8,
            seed=7,
            num_partitions=3,
            engine=engine,
        )
        legacy = make(None).fit(cuboid)
        blocked = make(EMEngineConfig(block_size=200, threads=2)).fit(cuboid)
        # Shards already re-associate sums, so the partitioned contract is
        # a notch looser than the single-model 1e-12.
        _assert_params_close(legacy.params_, blocked.params_, atol=1e-11)

    def test_float32_mode_is_approximate(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        make = lambda engine: TTCAM(
            num_user_topics=3, num_time_topics=3, max_iter=6, seed=7, engine=engine
        )
        legacy = make(None).fit(cuboid)
        fast = make(EMEngineConfig(dtype="float32")).fit(cuboid)
        _assert_params_close(legacy.params_, fast.params_, atol=5e-3)


@pytest.mark.faults
class TestResumeWithEngine:
    """Checkpoint/resume under the engine keeps PR 1's bit-identity."""

    def test_resumed_engine_run_is_bit_identical(self, tiny_cuboid, tmp_path):
        cuboid, _ = tiny_cuboid
        make = lambda: TTCAM(
            num_user_topics=3,
            num_time_topics=3,
            max_iter=20,
            seed=7,
            engine=EMEngineConfig(block_size=400, threads=2),
        )
        baseline = make().fit(cuboid)

        manager = CheckpointManager(tmp_path, every=3)
        with FaultInjector() as chaos:
            chaos.crash("em.iteration", iteration=7)
            with pytest.raises(InjectedFault):
                make().fit(cuboid, checkpoint=manager)
        assert chaos.fired == 1

        resumed = make().fit(cuboid, resume_from=manager)
        for name in ("theta", "phi", "theta_time", "phi_time", "lambda_u"):
            np.testing.assert_array_equal(
                getattr(baseline.params_, name),
                getattr(resumed.params_, name),
                err_msg=name,
            )
        assert resumed.trace_.log_likelihood == baseline.trace_.log_likelihood
