"""Tests for the opt-in runtime sanitizer (``repro.tooling.sanitize``).

Three layers: the check helpers in isolation, the :class:`Sanitizer`
recorder with hand-built violations, and the instrumented engine /
serving layers end-to-end — a sanitized fit must be bit-identical to an
unsanitized one, deliberately injected overlapping writes / aliased
buffers / broken state must raise :class:`SanitizerError`, and a
sanitize-off run must never construct a :class:`Sanitizer` at all (the
zero-overhead-when-off guarantee).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TTCAM
from repro.core.engine import BlockedEStep, EMEngineConfig, TTCAMKernel
from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel
from repro.recommend.ranking import Recommendation, TopKResult
from repro.recommend.serving import BatchScorer, ServingCache
from repro.tooling.sanitize import (
    ENV_FLAG,
    Sanitizer,
    SanitizerError,
    check_finite,
    check_simplex,
    check_state,
    check_topk_finite,
    check_unit_interval,
    sanitize_enabled,
)


@pytest.fixture(autouse=True)
def _sanitize_env_off(monkeypatch):
    """Default every test to an unset TCAM_SANITIZE (tests opt in)."""
    monkeypatch.delenv(ENV_FLAG, raising=False)


def _random_problem(seed=11, num_ratings=200):
    """Random triples + a random valid TTCAM state (engine-test idiom)."""
    rng = np.random.default_rng(seed)
    n, t_dim, v_dim, k1, k2 = 9, 4, 15, 3, 2
    u = rng.integers(0, n, num_ratings)
    t = rng.integers(0, t_dim, num_ratings)
    v = rng.integers(0, v_dim, num_ratings)
    c = rng.random(num_ratings) + 0.25
    state = {
        "theta": rng.dirichlet(np.ones(k1), size=n),
        "phi": rng.dirichlet(np.ones(v_dim), size=k1),
        "theta_time": rng.dirichlet(np.ones(k2), size=t_dim),
        "phi_time": rng.dirichlet(np.ones(v_dim), size=k2),
        "lambda_u": rng.random(n),
    }
    return (u, t, v, c), (n, t_dim, v_dim), (k1, k2), state


def _build_estep(config, seed=11, num_ratings=200):
    triples, shape, topics, state = _random_problem(seed, num_ratings)
    kernel = TTCAMKernel(*triples, shape, *topics, dtype=config.dtype)
    return BlockedEStep(kernel, config), state


# ---------------------------------------------------------------------------
# Enablement
# ---------------------------------------------------------------------------


class TestEnablement:
    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", " OFF "])
    def test_falsy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert sanitize_enabled()

    def test_unset_env_is_off(self):
        assert not sanitize_enabled()

    def test_engine_off_by_default(self):
        estep, _ = _build_estep(EMEngineConfig(block_size=64))
        assert estep._sanitizer is None

    def test_engine_config_knob(self):
        estep, _ = _build_estep(EMEngineConfig(block_size=64, sanitize=True))
        assert estep._sanitizer is not None

    def test_engine_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        estep, _ = _build_estep(EMEngineConfig(block_size=64))
        assert estep._sanitizer is not None

    def test_scorer_follows_env(self, monkeypatch):
        model = _make_serving_model()
        assert BatchScorer(model, ServingCache())._sanitizer is None
        monkeypatch.setenv(ENV_FLAG, "1")
        assert BatchScorer(model, ServingCache())._sanitizer is not None

    def test_no_sanitizer_constructed_when_off(self):
        before = Sanitizer.constructed
        estep, state = _build_estep(EMEngineConfig(block_size=32, threads=2))
        estep.compute(state)
        estep.compute(state)
        assert Sanitizer.constructed == before


# ---------------------------------------------------------------------------
# Check helpers
# ---------------------------------------------------------------------------


class TestCheckHelpers:
    def test_check_finite(self):
        check_finite("x", np.array([0.0, 1.0]))
        with pytest.raises(SanitizerError, match="NaN/Inf"):
            check_finite("x", np.array([0.0, np.nan]))
        with pytest.raises(SanitizerError, match="NaN/Inf"):
            check_finite("x", np.array([np.inf, 1.0]))

    def test_check_unit_interval(self):
        check_unit_interval("lam", np.array([0.0, 0.5, 1.0]))
        with pytest.raises(SanitizerError, match="unit interval"):
            check_unit_interval("lam", np.array([0.5, 1.5]))
        with pytest.raises(SanitizerError, match="unit interval"):
            check_unit_interval("lam", np.array([-0.1, 0.5]))

    def test_check_simplex(self):
        rng = np.random.default_rng(0)
        check_simplex("theta", rng.dirichlet(np.ones(5), size=8))
        with pytest.raises(SanitizerError, match="not stochastic"):
            check_simplex("theta", np.full((2, 4), 0.5))
        with pytest.raises(SanitizerError, match="negative"):
            check_simplex("theta", np.array([[1.5, -0.5]]))

    def test_check_simplex_float32_tolerance(self):
        # float32 rounding of a valid simplex must stay within tolerance.
        rng = np.random.default_rng(1)
        rows = rng.dirichlet(np.ones(64), size=16).astype(np.float32)
        check_simplex("theta", rows)

    def test_check_state_routes_by_key(self):
        _, _, _, state = _random_problem()
        check_state(state)
        bad = dict(state)
        bad["theta"] = state["theta"] * 2.0
        with pytest.raises(SanitizerError, match="theta"):
            check_state(bad)
        bad = dict(state)
        bad["lambda_u"] = state["lambda_u"] + 1.0
        with pytest.raises(SanitizerError, match="lambda_u"):
            check_state(bad)

    def test_check_topk_finite(self):
        good = TopKResult(
            recommendations=[Recommendation(item=3, score=0.5)],
            items_scored=1,
            sorted_accesses=0,
        )
        check_topk_finite([good])
        bad = TopKResult(
            recommendations=[Recommendation(item=3, score=float("nan"))],
            items_scored=1,
            sorted_accesses=0,
        )
        with pytest.raises(SanitizerError, match="non-finite"):
            check_topk_finite([good, bad])


# ---------------------------------------------------------------------------
# The Sanitizer recorder
# ---------------------------------------------------------------------------


class TestSanitizerRecorder:
    def test_constructed_counter_increments(self):
        before = Sanitizer.constructed
        Sanitizer("a")
        Sanitizer("b")
        assert Sanitizer.constructed == before + 2

    def test_disjoint_writes_pass(self):
        san = Sanitizer("t")
        san.record_write(0, 0, 50)
        san.record_write(1, 50, 100)
        san.assert_disjoint_writes()
        san.assert_covers(100)

    def test_overlapping_writes_raise(self):
        san = Sanitizer("t")
        san.record_write(0, 0, 60)
        san.record_write(1, 50, 100)
        with pytest.raises(SanitizerError, match="overlapping"):
            san.assert_disjoint_writes()

    def test_coverage_gap_raises(self):
        san = Sanitizer("t")
        san.record_write(0, 0, 40)
        san.record_write(1, 50, 100)
        with pytest.raises(SanitizerError, match="gap"):
            san.assert_covers(100)

    def test_coverage_shortfall_raises(self):
        san = Sanitizer("t")
        san.record_write(0, 0, 90)
        with pytest.raises(SanitizerError, match="90"):
            san.assert_covers(100)

    def test_no_writes_raise(self):
        san = Sanitizer("t")
        with pytest.raises(SanitizerError, match="no write intervals"):
            san.assert_covers(100)

    def test_aliased_buffers_raise(self):
        san = Sanitizer("t")
        shared = np.zeros(4)
        workspaces = [{"buf": shared}, {"buf": shared}]
        stats = [{"acc": np.zeros(2)}, {"acc": np.zeros(2)}]
        with pytest.raises(SanitizerError, match="aliases"):
            san.assert_private_buffers(workspaces, stats)

    def test_private_buffers_pass(self):
        san = Sanitizer("t")
        workspaces = [{"buf": np.zeros(4)}, {"buf": np.zeros(4)}]
        stats = [{"acc": np.zeros(2)}, {"acc": np.zeros(2)}]
        san.assert_private_buffers(workspaces, stats)

    def test_fixed_order_reduce_verification(self):
        san = Sanitizer("t")
        partials = [
            {"acc": np.array([0.1, 0.2])},
            {"acc": np.array([0.3, 0.4])},
        ]
        total = {"acc": partials[0]["acc"] + partials[1]["acc"]}
        san.verify_fixed_order_reduce(total, partials)
        tampered = {"acc": total["acc"] + 1e-9}
        with pytest.raises(SanitizerError, match="completion order"):
            san.verify_fixed_order_reduce(tampered, partials)

    def test_empty_partials_raise(self):
        san = Sanitizer("t")
        with pytest.raises(SanitizerError, match="no partial snapshots"):
            san.verify_fixed_order_reduce({}, [])


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_sanitized_compute_is_bit_identical(self):
        plain, state = _build_estep(EMEngineConfig(block_size=32, threads=3))
        sanitized, _ = _build_estep(
            EMEngineConfig(block_size=32, threads=3, sanitize=True)
        )
        expected, expected_ll = plain.compute(state)
        stats, ll = sanitized.compute(state)
        assert ll == expected_ll
        for name, array in expected.items():
            assert np.array_equal(stats[name], array), name

    def test_clean_pass_raises_nothing(self):
        estep, state = _build_estep(
            EMEngineConfig(block_size=32, threads=2, sanitize=True)
        )
        estep.compute(state)
        estep.compute(state)  # buffer-reuse steady state stays clean

    def test_overlapping_worker_runs_detected(self):
        estep, state = _build_estep(
            EMEngineConfig(block_size=32, threads=2, sanitize=True)
        )
        assert len(estep.runs) == 2
        estep.runs[1] = estep.runs[0]  # both workers write the same rows
        with pytest.raises(SanitizerError, match="overlapping"):
            estep.compute(state)

    def test_block_grid_gap_detected(self):
        estep, state = _build_estep(
            EMEngineConfig(block_size=32, threads=2, sanitize=True)
        )
        assert len(estep.runs[0]) >= 2
        estep.runs[0] = estep.runs[0][1:]  # drop the first block
        with pytest.raises(SanitizerError, match="gap"):
            estep.compute(state)

    def test_aliased_workspace_detected(self):
        estep, state = _build_estep(
            EMEngineConfig(block_size=32, threads=2, sanitize=True)
        )
        estep._ensure_buffers()
        estep._workspaces[1] = estep._workspaces[0]
        with pytest.raises(SanitizerError, match="aliases"):
            estep.compute(state)

    def test_invalid_state_detected(self):
        estep, state = _build_estep(
            EMEngineConfig(block_size=32, sanitize=True)
        )
        state["theta"] = state["theta"] * 2.0
        with pytest.raises(SanitizerError, match="theta"):
            estep.compute(state)

    def test_sanitized_fit_matches_plain_fit(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        plain = TTCAM(3, 2, max_iter=3, tol=-1.0, seed=7,
                      engine=EMEngineConfig(block_size=64, threads=2)).fit(cuboid)
        sanitized = TTCAM(3, 2, max_iter=3, tol=-1.0, seed=7,
                          engine=EMEngineConfig(block_size=64, threads=2,
                                                sanitize=True)).fit(cuboid)
        assert np.array_equal(plain.params_.theta, sanitized.params_.theta)
        assert np.array_equal(plain.params_.phi, sanitized.params_.phi)
        assert np.array_equal(plain.params_.lambda_u, sanitized.params_.lambda_u)


# ---------------------------------------------------------------------------
# Serving integration
# ---------------------------------------------------------------------------


def _make_serving_model(seed=5):
    rng = np.random.default_rng(seed)
    params = TTCAMParameters(
        theta=rng.dirichlet(np.full(3, 0.4), size=8),
        phi=rng.dirichlet(np.full(30, 0.1), size=3),
        theta_time=rng.dirichlet(np.full(2, 0.4), size=4),
        phi_time=rng.dirichlet(np.full(30, 0.1), size=2),
        lambda_u=rng.beta(3.0, 3.0, size=8),
    )
    return LoadedModel(params)


class TestServingIntegration:
    def test_serve_group_flags_non_finite_scores(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        scorer = BatchScorer(_make_serving_model(), ServingCache())
        assert scorer._sanitizer is not None
        bad = TopKResult(
            recommendations=[Recommendation(item=0, score=float("nan"))],
            items_scored=1,
            sorted_accesses=0,
        )
        monkeypatch.setattr(
            "repro.recommend.serving.exact_rescore",
            lambda *args, **kwargs: bad,
        )
        with pytest.raises(SanitizerError, match="non-finite"):
            scorer.serve_group(0, [0, 1], 3, None, "float64")

    def test_serve_group_unsanitized_does_not_check(self, monkeypatch):
        scorer = BatchScorer(_make_serving_model(), ServingCache())
        assert scorer._sanitizer is None
        bad = TopKResult(
            recommendations=[Recommendation(item=0, score=float("nan"))],
            items_scored=1,
            sorted_accesses=0,
        )
        monkeypatch.setattr(
            "repro.recommend.serving.exact_rescore",
            lambda *args, **kwargs: bad,
        )
        results = scorer.serve_group(0, [0], 3, None, "float64")
        assert results == [bad]

    def test_clean_serving_passes_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        scorer = BatchScorer(_make_serving_model(), ServingCache())
        results = scorer.serve_group(1, [0, 3, 5], 4, None, "float64")
        assert len(results) == 3
        for result in results:
            assert len(result.items) == 4
