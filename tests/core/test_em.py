"""Tests for the shared EM machinery."""

import numpy as np
import pytest

from repro.core.em import (
    EMTrace,
    ScatterPlan,
    normalize_rows,
    random_stochastic,
    scatter_sum,
    scatter_sum_1d,
)


class TestScatterSum:
    def test_matches_add_at(self, rng):
        rows = rng.integers(0, 7, size=200)
        values = rng.random((200, 5))
        expected = np.zeros((7, 5))
        np.add.at(expected, rows, values)
        np.testing.assert_allclose(scatter_sum(rows, values, 7), expected)

    def test_empty_rows_stay_zero(self):
        rows = np.array([0, 0])
        values = np.ones((2, 3))
        result = scatter_sum(rows, values, 4)
        assert result[1:].sum() == 0
        assert result[0].tolist() == [2.0, 2.0, 2.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scatter_sum(np.array([0, 1]), np.ones((3, 2)), 2)

    def test_1d_variant(self, rng):
        rows = rng.integers(0, 4, size=50)
        values = rng.random(50)
        expected = np.bincount(rows, weights=values, minlength=4)
        np.testing.assert_allclose(scatter_sum_1d(rows, values, 4), expected)


class TestScatterSumOut:
    """The buffer-accumulating mode added for the blocked EM engine."""

    def test_out_accumulates_across_calls(self, rng):
        rows = rng.integers(0, 6, size=80)
        values = rng.random((80, 3))
        out = np.zeros((6, 3))
        returned = scatter_sum(rows[:40], values[:40], 6, out=out)
        assert returned is out
        scatter_sum(rows[40:], values[40:], 6, out=out)
        np.testing.assert_allclose(out, scatter_sum(rows, values, 6))

    def test_out_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="out shape"):
            scatter_sum(np.array([0, 1]), np.ones((2, 3)), 4, out=np.zeros((4, 2)))

    def test_1d_out_accumulates(self, rng):
        rows = rng.integers(0, 5, size=60)
        values = rng.random(60)
        out = np.zeros(5)
        scatter_sum_1d(rows[:30], values[:30], 5, out=out)
        scatter_sum_1d(rows[30:], values[30:], 5, out=out)
        np.testing.assert_allclose(out, scatter_sum_1d(rows, values, 5))

    def test_1d_out_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="out shape"):
            scatter_sum_1d(np.array([0, 1]), np.ones(2), 4, out=np.zeros(3))


class TestScatterPlan:
    def test_matches_planless_result(self, rng):
        plan = ScatterPlan(k=5, capacity=100)
        for batch in (100, 37, 1):  # full capacity and leading slices
            rows = rng.integers(0, 8, size=batch)
            values = rng.random((batch, 5))
            np.testing.assert_array_equal(
                scatter_sum(rows, values, 8, plan=plan),
                scatter_sum(rows, values, 8),
            )

    def test_flat_index_allocates_nothing_after_init(self, rng):
        plan = ScatterPlan(k=3, capacity=10)
        rows = rng.integers(0, 4, size=10)
        first = plan.flat_index(rows)
        second = plan.flat_index(rows)
        assert first.base is plan._flat or first is plan._flat
        np.testing.assert_array_equal(first, second)

    def test_over_capacity_rejected(self):
        plan = ScatterPlan(k=2, capacity=4)
        with pytest.raises(ValueError, match="capacity"):
            plan.flat_index(np.zeros(5, dtype=np.int64))

    def test_wrong_width_rejected(self, rng):
        plan = ScatterPlan(k=3, capacity=10)
        with pytest.raises(ValueError, match="k=3"):
            scatter_sum(np.array([0, 1]), np.ones((2, 4)), 2, plan=plan)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ScatterPlan(k=0, capacity=4)
        with pytest.raises(ValueError):
            ScatterPlan(k=2, capacity=0)


class TestNormalizeRows:
    def test_rows_sum_to_one(self, rng):
        matrix = rng.random((6, 9))
        out = normalize_rows(matrix)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_zero_rows_become_uniform(self):
        matrix = np.zeros((2, 4))
        matrix[0, 1] = 3.0
        out = normalize_rows(matrix)
        np.testing.assert_allclose(out[1], 0.25)
        assert out[0, 1] == 1.0

    def test_smoothing_removes_zeros(self):
        matrix = np.array([[1.0, 0.0, 0.0]])
        out = normalize_rows(matrix, smoothing=0.1)
        assert np.all(out > 0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_input_not_mutated(self):
        matrix = np.array([[1.0, 1.0]])
        normalize_rows(matrix)
        assert matrix.tolist() == [[1.0, 1.0]]


class TestRandomStochastic:
    def test_rows_sum_to_one(self, rng):
        out = random_stochastic(rng, 5, 8)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_no_near_zero_entries(self, rng):
        out = random_stochastic(rng, 10, 10)
        # 0.5 + U(0,1) keeps every cell at least a third of the mean.
        assert out.min() > 0.5 / (1.5 * 10)


class TestEMTrace:
    def test_records_and_converges(self):
        trace = EMTrace()
        assert not trace.record(-100.0, tol=1e-3)
        assert not trace.record(-50.0, tol=1e-3)  # big improvement
        assert trace.record(-49.999, tol=1e-3)  # tiny improvement → converged
        assert trace.converged
        assert trace.iterations == 3
        assert trace.final_log_likelihood == -49.999

    def test_nonfinite_rejected(self):
        trace = EMTrace()
        with pytest.raises(FloatingPointError):
            trace.record(float("nan"), tol=1e-3)

    def test_final_requires_iterations(self):
        with pytest.raises(ValueError):
            _ = EMTrace().final_log_likelihood

    def test_monotone_check(self):
        good = EMTrace(log_likelihood=[-10.0, -5.0, -4.0])
        bad = EMTrace(log_likelihood=[-10.0, -5.0, -6.0])
        assert good.is_monotone()
        assert not bad.is_monotone()

    def test_monotone_allows_float_slack(self):
        trace = EMTrace(log_likelihood=[-10.0, -10.0 - 1e-12])
        assert trace.is_monotone()
