"""Tests for the TTCAM model."""

import numpy as np
import pytest

from repro.core.ttcam import TTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted():
    cuboid, truth = c.generate(c.tiny_config())
    model = TTCAM(num_user_topics=4, num_time_topics=3, max_iter=25, seed=0)
    model.fit(cuboid)
    return model, cuboid, truth


class TestValidation:
    def test_rejects_bad_topic_counts(self):
        with pytest.raises(ValueError):
            TTCAM(num_user_topics=0)
        with pytest.raises(ValueError):
            TTCAM(num_time_topics=0)

    def test_unfitted_scoring_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            TTCAM().score_items(0, 0)

    def test_name_reflects_weighting(self):
        assert TTCAM().name == "TTCAM"
        assert TTCAM(weighted=True).name == "W-TTCAM"


class TestFit:
    def test_log_likelihood_monotone(self, fitted):
        model, _, _ = fitted
        assert model.trace_.is_monotone(slack=1e-6)

    def test_parameters_are_stochastic(self, fitted):
        model, _, _ = fitted
        params = model.params_
        np.testing.assert_allclose(params.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.theta_time.sum(axis=1), 1.0)
        np.testing.assert_allclose(params.phi_time.sum(axis=1), 1.0)

    def test_dimensions(self, fitted):
        model, cuboid, _ = fitted
        params = model.params_
        assert params.theta_time.shape == (cuboid.num_intervals, 3)
        assert params.phi_time.shape == (3, cuboid.num_items)
        assert params.num_user_topics == 4
        assert params.num_time_topics == 3

    def test_reproducible_by_seed(self):
        cuboid, _ = c.generate(c.tiny_config())
        m1 = TTCAM(3, 3, max_iter=10, seed=7).fit(cuboid)
        m2 = TTCAM(3, 3, max_iter=10, seed=7).fit(cuboid)
        np.testing.assert_array_equal(m1.params_.phi_time, m2.params_.phi_time)

    def test_weighted_variant_fits(self):
        cuboid, _ = c.generate(c.tiny_config())
        model = TTCAM(3, 3, max_iter=15, weighted=True, seed=0).fit(cuboid)
        assert model.trace_.is_monotone(slack=1e-6)

    def test_score_scale_invariance(self):
        """Every M-step is a count ratio, so with no absolute pseudo-count
        (smoothing=0) globally rescaling the rating scores must leave the
        fitted parameters unchanged."""
        cuboid, _ = c.generate(c.tiny_config())
        doubled = cuboid.with_scores(cuboid.scores * 2.0)
        m1 = TTCAM(3, 3, max_iter=12, smoothing=0.0, tol=0.0, seed=0).fit(cuboid)
        m2 = TTCAM(3, 3, max_iter=12, smoothing=0.0, tol=0.0, seed=0).fit(doubled)
        np.testing.assert_allclose(m1.params_.theta, m2.params_.theta, atol=1e-8)
        np.testing.assert_allclose(m1.params_.phi, m2.params_.phi, atol=1e-8)
        np.testing.assert_allclose(m1.params_.lambda_u, m2.params_.lambda_u, atol=1e-8)

    def test_strict_monotonicity_without_smoothing(self):
        """With smoothing=0 the implementation is textbook EM: the
        training log-likelihood must be exactly non-decreasing."""
        cuboid, _ = c.generate(c.tiny_config())
        model = TTCAM(3, 3, max_iter=30, smoothing=0.0, tol=0.0, seed=0).fit(cuboid)
        ll = model.trace_.log_likelihood
        assert all(b >= a - 1e-9 * abs(a) for a, b in zip(ll, ll[1:]))

    def test_n_init_keeps_best_likelihood(self):
        cuboid, _ = c.generate(c.tiny_config())
        single_lls = [
            TTCAM(3, 3, max_iter=12, seed=s).fit(cuboid).trace_.final_log_likelihood
            for s in range(3)
        ]
        multi = TTCAM(3, 3, max_iter=12, n_init=3, seed=0).fit(cuboid)
        assert multi.trace_.final_log_likelihood == pytest.approx(max(single_lls))

    def test_n_init_validated(self):
        with pytest.raises(ValueError):
            TTCAM(n_init=0)

    def test_global_lambda_option(self):
        cuboid, _ = c.generate(c.tiny_config())
        model = TTCAM(3, 3, max_iter=15, personalized_lambda=False, seed=0).fit(cuboid)
        lam = model.params_.lambda_u
        assert np.allclose(lam, lam[0])
        assert model.trace_.is_monotone(slack=1e-6)

    def test_more_iterations_no_worse_likelihood(self):
        cuboid, _ = c.generate(c.tiny_config())
        short = TTCAM(3, 3, max_iter=5, tol=0, seed=0).fit(cuboid)
        long = TTCAM(3, 3, max_iter=30, tol=0, seed=0).fit(cuboid)
        assert long.trace_.final_log_likelihood >= short.trace_.final_log_likelihood


class TestScoring:
    def test_scores_form_distribution(self, fitted):
        model, _, _ = fitted
        scores = model.score_items(2, 4)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_query_space_matches_score_items(self, fitted):
        model, _, _ = fitted
        for user, interval in [(0, 0), (5, 7), (20, 11)]:
            weights, matrix = model.query_space(user, interval)
            np.testing.assert_allclose(
                weights @ matrix, model.score_items(user, interval), atol=1e-12
            )

    def test_query_space_concatenates_topic_spaces(self, fitted):
        model, _, _ = fitted
        weights, matrix = model.query_space(0, 0)
        assert weights.shape == (7,)  # K1 + K2
        assert matrix.shape[0] == 7
        lam = model.params_.lambda_u[0]
        assert weights[:4].sum() == pytest.approx(lam)
        assert weights[4:].sum() == pytest.approx(1 - lam)

    def test_static_matrix_cache_key(self, fitted):
        model, _, _ = fitted
        assert model.matrix_cache_key(0) == model.matrix_cache_key(9)

    def test_topic_item_matrix_memoised(self, fitted):
        model, _, _ = fitted
        m1 = model.params_.topic_item_matrix()
        m2 = model.params_.topic_item_matrix()
        assert m1 is m2

    def test_held_out_log_likelihood_finite(self, fitted):
        model, cuboid, _ = fitted
        assert np.isfinite(model.log_likelihood(cuboid))


class TestRecovery:
    def test_recovers_event_structure(self, fitted):
        """Fitted time topics should align with the generator's events."""
        from repro.analysis.topics import match_topics

        model, _, truth = fitted
        _, similarity = match_topics(model.params_.phi_time, truth.phi_events)
        assert similarity.max() > 0.3

    def test_lambda_correlates_with_truth(self):
        cuboid, truth = c.generate(
            c.tiny_config(num_users=200, mean_ratings_per_user=40, seed=21)
        )
        model = TTCAM(4, 3, max_iter=40, seed=0).fit(cuboid)
        corr = np.corrcoef(model.params_.lambda_u, truth.lambda_u)[0, 1]
        assert corr > 0.2
