"""Tests for the item-weighting scheme (Equations 17–20)."""

import numpy as np
import pytest

from repro.core.weighting import (
    ItemWeights,
    apply_item_weighting,
    bursty_degree,
    compute_item_weights,
    inverse_user_frequency,
)
from repro.data.cuboid import RatingCuboid


class TestInverseUserFrequency:
    def test_hand_computed(self, handmade_cuboid):
        # N = 3 users; N(v) = [1, 2, 2]
        iuf = inverse_user_frequency(handmade_cuboid)
        np.testing.assert_allclose(
            iuf, [np.log(3 / 1), np.log(3 / 2), np.log(3 / 2)]
        )

    def test_unrated_item_gets_max_weight(self):
        cub = RatingCuboid.from_arrays([0, 1], [0, 0], [0, 0], num_items=3)
        iuf = inverse_user_frequency(cub)
        assert iuf[1] == pytest.approx(np.log(2))  # N(v)=0 treated as 1
        assert iuf[1] > iuf[0]

    def test_monotone_decreasing_in_popularity(self, tiny_cuboid):
        cuboid, _ = tiny_cuboid
        iuf = inverse_user_frequency(cuboid)
        counts = cuboid.item_user_counts()
        order = np.argsort(counts)
        rated = order[counts[order] > 0]
        # iuf along increasing popularity must be non-increasing.
        assert np.all(np.diff(iuf[rated]) <= 1e-12)

    def test_item_rated_by_everyone_has_zero_iuf(self):
        cub = RatingCuboid.from_arrays([0, 1, 2], [0, 0, 0], [0, 0, 0])
        assert inverse_user_frequency(cub)[0] == pytest.approx(0.0)


class TestBurstyDegree:
    def test_hand_computed(self, handmade_cuboid):
        # N=3, N_t = [2, 3]; N_t(v): t0 → [1,2,0], t1 → [1,0,2]; N(v)=[1,2,2]
        burst = bursty_degree(handmade_cuboid)
        assert burst.shape == (2, 3)
        assert burst[0, 0] == pytest.approx((1 / 2) * (3 / 1))
        assert burst[0, 1] == pytest.approx((2 / 2) * (3 / 2))
        assert burst[1, 2] == pytest.approx((2 / 3) * (3 / 2))
        assert burst[0, 2] == 0.0

    def test_bursty_item_beats_steady_item(self):
        # Item 0 appears only in interval 0 (burst); item 1 spread evenly.
        # Background activity (item 2) keeps every interval equally busy so
        # per-interval user counts do not distort the comparison.
        users, intervals, items = [], [], []
        for u in range(4):  # burst on item 0 at t=0
            users.append(u), intervals.append(0), items.append(0)
        for t in range(4):  # steady item 1, one user per interval
            users.append(t), intervals.append(t), items.append(1)
        for t in range(4):  # background: users 4..7 active everywhere
            for u in range(4, 8):
                users.append(u), intervals.append(t), items.append(2)
        cub = RatingCuboid.from_arrays(users, intervals, items)
        burst = bursty_degree(cub)
        assert burst[0, 0] > burst[:, 1].max()

    def test_empty_interval_contributes_zero(self):
        cub = RatingCuboid.from_arrays([0], [0], [0], num_intervals=3)
        burst = bursty_degree(cub)
        assert burst[1].sum() == 0
        assert burst[2].sum() == 0

    def test_no_nan_on_degenerate_data(self):
        cub = RatingCuboid.from_arrays([0], [0], [0], num_items=4, num_intervals=2)
        burst = bursty_degree(cub)
        assert np.all(np.isfinite(burst))


class TestItemWeights:
    def test_weight_matches_components(self, handmade_cuboid):
        weights = compute_item_weights(handmade_cuboid)
        expected = weights.iuf[1] * weights.burst[0, 1]
        assert weights.weight(1, 0) == pytest.approx(expected)

    def test_weight_matrix_shape(self, handmade_cuboid):
        weights = compute_item_weights(handmade_cuboid)
        matrix = weights.weight_matrix()
        assert matrix.shape == (2, 3)
        assert matrix[0, 1] == pytest.approx(weights.weight(1, 0))


class TestApplyWeighting:
    def test_scores_rescaled(self, handmade_cuboid):
        weights = compute_item_weights(handmade_cuboid)
        weighted = apply_item_weighting(handmade_cuboid, weights)
        assert weighted.nnz == handmade_cuboid.nnz
        i = 0
        v, t = int(handmade_cuboid.items[i]), int(handmade_cuboid.intervals[i])
        expected = handmade_cuboid.scores[i] * max(weights.weight(v, t), 1e-6)
        assert weighted.scores[i] == pytest.approx(expected)

    def test_floor_keeps_entries_positive(self, handmade_cuboid):
        weighted = apply_item_weighting(handmade_cuboid)
        assert np.all(weighted.scores > 0)

    def test_weights_computed_on_demand(self, handmade_cuboid):
        explicit = apply_item_weighting(
            handmade_cuboid, compute_item_weights(handmade_cuboid)
        )
        implicit = apply_item_weighting(handmade_cuboid)
        np.testing.assert_allclose(explicit.scores, implicit.scores)

    def test_dimension_mismatch_rejected(self, handmade_cuboid, tiny_cuboid):
        other, _ = tiny_cuboid
        weights = compute_item_weights(other)
        with pytest.raises(ValueError):
            apply_item_weighting(handmade_cuboid, weights)

    def test_promotes_salient_bursty_over_popular_steady(self):
        """The scheme's purpose: a salient bursty item gains score share
        at the expense of a popular steady item."""
        users, intervals, items = [], [], []
        for t in range(4):  # popular steady item 0: 6 users per interval
            for u in range(6):
                users.append(u), intervals.append(t), items.append(0)
        for u in (6, 7):  # salient bursty item 1: 2 users, only at t=2
            users.append(u), intervals.append(2), items.append(1)
        cub = RatingCuboid.from_arrays(users, intervals, items)
        weighted = apply_item_weighting(cub)
        before = cub.scores[cub.items == 1].sum() / cub.total_score
        after = weighted.scores[weighted.items == 1].sum() / weighted.total_score
        assert after > before
