"""Tests for the paired-bootstrap significance machinery."""

import numpy as np
import pytest

from repro.evaluation.protocol import TemporalQuery
from repro.evaluation.significance import (
    compare_many,
    paired_bootstrap,
    per_query_metric,
)


class FixedModel:
    """Scores items by a fixed preference vector."""

    def __init__(self, scores):
        self._scores = np.asarray(scores, dtype=np.float64)

    def score_items(self, user, interval):
        return self._scores.copy()


def make_queries(relevant_items, n=40):
    return [
        TemporalQuery(user=i, interval=0, relevant=frozenset(relevant_items), exclude=())
        for i in range(n)
    ]


GOOD = FixedModel([0.9, 0.8, 0.1, 0.1, 0.1])  # ranks relevant {0,1} top
BAD = FixedModel([0.1, 0.1, 0.9, 0.8, 0.7])  # ranks irrelevant top


class TestPerQueryMetric:
    def test_values_match_expectation(self):
        queries = make_queries({0, 1}, n=5)
        values = per_query_metric(GOOD, queries, "precision", k=2)
        np.testing.assert_allclose(values, 1.0)
        values = per_query_metric(BAD, queries, "precision", k=2)
        np.testing.assert_allclose(values, 0.0)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            per_query_metric(GOOD, make_queries({0}), "bleu", k=2)


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self):
        queries = make_queries({0, 1})
        result = paired_bootstrap(GOOD, BAD, queries, metric="precision", k=2, seed=0)
        assert result.delta == pytest.approx(1.0)
        assert result.significant
        assert result.p_value < 0.01
        assert result.ci_low > 0

    def test_identical_models_not_significant(self):
        queries = make_queries({0, 1})
        result = paired_bootstrap(GOOD, GOOD, queries, metric="ndcg", k=3, seed=0)
        assert result.delta == 0.0
        assert not result.significant

    def test_direction_symmetry(self):
        queries = make_queries({0, 1})
        forward = paired_bootstrap(GOOD, BAD, queries, metric="precision", k=2, seed=1)
        backward = paired_bootstrap(BAD, GOOD, queries, metric="precision", k=2, seed=1)
        assert forward.delta == pytest.approx(-backward.delta)

    def test_string_rendering(self):
        queries = make_queries({0})
        result = paired_bootstrap(GOOD, BAD, queries, metric="ndcg", k=2)
        text = str(result)
        assert "Δndcg@2" in text
        assert "p =" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap(GOOD, BAD, [], metric="ndcg", k=2)
        with pytest.raises(ValueError):
            paired_bootstrap(GOOD, BAD, make_queries({0}), num_resamples=0)


class TestCompareMany:
    def test_compares_against_baseline(self):
        queries = make_queries({0, 1})
        mediocre = FixedModel([0.9, 0.1, 0.8, 0.1, 0.1])
        results = compare_many(
            {"good": GOOD, "bad": BAD, "mid": mediocre},
            baseline="mid",
            queries=queries,
            metric="precision",
            k=2,
        )
        assert set(results) == {"good", "bad"}
        assert results["good"].delta > 0
        assert results["bad"].delta < 0

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            compare_many({"a": GOOD}, baseline="z", queries=make_queries({0}))

    def test_noisy_models_on_real_data(self, tiny_split):
        """End-to-end: TCAM vs popularity should be significantly better
        on structured synthetic data."""
        from repro.baselines import GlobalPopularity
        from repro.core import TTCAM
        from repro.evaluation import build_queries

        queries = build_queries(tiny_split, max_queries=150, seed=0)
        tcam = TTCAM(4, 3, max_iter=30, seed=0).fit(tiny_split.train)
        pop = GlobalPopularity().fit(tiny_split.train)
        result = paired_bootstrap(tcam, pop, queries, metric="ndcg", k=5, seed=0)
        assert result.delta > 0
        assert result.significant
