"""Tests for the multi-model experiment harness."""

import numpy as np
import pytest

from repro.baselines.popularity import GlobalPopularity, RecentPopularity
from repro.evaluation.harness import ModelSpec, run_accuracy_experiment
import tests.conftest as c


@pytest.fixture(scope="module")
def cuboid():
    cub, _ = c.generate(c.tiny_config())
    return cub


SPECS = [
    ModelSpec("Pop", GlobalPopularity),
    ModelSpec("Recent", RecentPopularity),
]


class TestRunAccuracyExperiment:
    def test_basic_run(self, cuboid):
        result = run_accuracy_experiment(
            cuboid, SPECS, ks=(1, 5), metrics=("precision", "ndcg"), num_folds=2,
            max_queries=50,
        )
        assert set(result.mean) == {"Pop", "Recent"}
        assert result.ks == (1, 5)
        assert result.num_folds == 2
        for model in result.mean:
            for metric in ("precision", "ndcg"):
                for k in (1, 5):
                    assert 0.0 <= result.mean[model][metric][k] <= 1.0
                    assert result.std[model][metric][k] >= 0.0

    def test_holdout_mode(self, cuboid):
        result = run_accuracy_experiment(
            cuboid, SPECS, ks=(3,), metrics=("f1",), num_folds=1, max_queries=30
        )
        assert result.num_folds == 1

    def test_series_and_at(self, cuboid):
        result = run_accuracy_experiment(
            cuboid, SPECS, ks=(1, 3, 5), metrics=("ndcg",), num_folds=1, max_queries=30
        )
        series = result.series("Pop", "ndcg")
        assert len(series) == 3
        assert series[1] == result.at("Pop", "ndcg", 3)

    def test_winner(self, cuboid):
        result = run_accuracy_experiment(
            cuboid, SPECS, ks=(5,), metrics=("ndcg",), num_folds=1, max_queries=30
        )
        winner = result.winner("ndcg", 5)
        assert winner in {"Pop", "Recent"}
        assert result.at(winner, "ndcg", 5) == max(
            result.at(name, "ndcg", 5) for name in result.mean
        )

    def test_format_table(self, cuboid):
        result = run_accuracy_experiment(
            cuboid, SPECS, ks=(1, 5), metrics=("precision",), num_folds=1, max_queries=30
        )
        table = result.format_table("precision")
        assert "Pop" in table
        assert "@5" in table

    def test_duplicate_names_rejected(self, cuboid):
        with pytest.raises(ValueError, match="duplicate"):
            run_accuracy_experiment(
                cuboid, [ModelSpec("X", GlobalPopularity)] * 2, num_folds=1
            )

    def test_empty_specs_rejected(self, cuboid):
        with pytest.raises(ValueError):
            run_accuracy_experiment(cuboid, [], num_folds=1)

    def test_recent_popularity_beats_global_on_temporal_data(self, cuboid):
        """Sanity: per-interval popularity must help on bursty data."""
        result = run_accuracy_experiment(
            cuboid, SPECS, ks=(10,), metrics=("ndcg",), num_folds=2, max_queries=150
        )
        assert result.at("Recent", "ndcg", 10) > result.at("Pop", "ndcg", 10)
