"""Tests for held-out likelihood and perplexity."""

import numpy as np
import pytest

from repro.core import TTCAM
from repro.data.cuboid import RatingCuboid
from repro.evaluation.likelihood import (
    heldout_log_likelihood,
    heldout_perplexity,
    uniform_perplexity,
)


class UniformModel:
    def __init__(self, num_items):
        self.num_items = num_items

    def score_items(self, user, interval):
        return np.full(self.num_items, 1.0 / self.num_items)


class OracleModel:
    """Puts 90% mass on item 0."""

    def score_items(self, user, interval):
        scores = np.full(5, 0.025)
        scores[0] = 0.9
        return scores


def small_test_cuboid():
    return RatingCuboid.from_arrays(
        users=[0, 0, 1],
        intervals=[0, 1, 0],
        items=[0, 0, 0],
        num_items=5,
        num_intervals=2,
    )


class TestHeldoutLikelihood:
    def test_uniform_model_exact_value(self):
        test = small_test_cuboid()
        ll = heldout_log_likelihood(UniformModel(5), test)
        assert ll == pytest.approx(3 * np.log(1 / 5), rel=1e-6)

    def test_better_model_scores_higher(self):
        test = small_test_cuboid()
        assert heldout_log_likelihood(OracleModel(), test) > heldout_log_likelihood(
            UniformModel(5), test
        )

    def test_weights_respected(self):
        test = RatingCuboid.from_arrays([0], [0], [0], scores=[3.0], num_items=5)
        ll = heldout_log_likelihood(UniformModel(5), test)
        assert ll == pytest.approx(3 * np.log(1 / 5), rel=1e-6)

    def test_negative_scores_rejected(self):
        class Negative:
            def score_items(self, user, interval):
                return np.array([-1.0, 2.0, 0.0, 0.0, 0.0])

        with pytest.raises(ValueError, match="negative"):
            heldout_log_likelihood(Negative(), small_test_cuboid())

    def test_empty_cuboid_rejected(self):
        empty = RatingCuboid.from_arrays([], [], [], num_users=1, num_intervals=1, num_items=1)
        with pytest.raises(ValueError):
            heldout_log_likelihood(UniformModel(1), empty)


class TestPerplexity:
    def test_uniform_model_perplexity_is_catalogue_size(self):
        test = small_test_cuboid()
        assert heldout_perplexity(UniformModel(5), test) == pytest.approx(5.0)
        assert uniform_perplexity(test) == 5.0

    def test_oracle_beats_uniform(self):
        test = small_test_cuboid()
        assert heldout_perplexity(OracleModel(), test) < 5.0

    def test_fitted_tcam_beats_uniform(self, tiny_split):
        model = TTCAM(4, 3, max_iter=30, seed=0).fit(tiny_split.train)
        perplexity = heldout_perplexity(model, tiny_split.test)
        assert perplexity < uniform_perplexity(tiny_split.test)

    def test_matches_model_internal_likelihood(self, tiny_split):
        """heldout_log_likelihood agrees with TTCAM.log_likelihood."""
        model = TTCAM(4, 3, max_iter=20, seed=0).fit(tiny_split.train)
        external = heldout_log_likelihood(model, tiny_split.test, renormalize=False)
        internal = model.log_likelihood(tiny_split.test)
        assert external == pytest.approx(internal, rel=1e-6)

    def test_model_selection_signal(self, tiny_split):
        """More adequate topic counts should not be worse on held-out
        perplexity than a one-topic model."""
        rich = TTCAM(4, 3, max_iter=30, seed=0).fit(tiny_split.train)
        poor = TTCAM(1, 1, max_iter=30, seed=0).fit(tiny_split.train)
        assert heldout_perplexity(rich, tiny_split.test) < heldout_perplexity(
            poor, tiny_split.test
        )
