"""Tests for ranking metrics, including hand-computed values and
hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    METRICS,
    average_precision_at_k,
    f1_at_k,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank_at_k,
)

RECOMMENDED = [10, 20, 30, 40, 50]
RELEVANT = {20, 50, 99}


class TestHandComputed:
    def test_precision(self):
        # hits in top-5: items 20 and 50 → 2/5
        assert precision_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(0.4)
        assert precision_at_k(RECOMMENDED, RELEVANT, 2) == pytest.approx(0.5)
        assert precision_at_k(RECOMMENDED, RELEVANT, 1) == 0.0

    def test_recall(self):
        assert recall_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(2 / 3)
        assert recall_at_k(RECOMMENDED, RELEVANT, 2) == pytest.approx(1 / 3)

    def test_f1(self):
        p, r = 0.4, 2 / 3
        assert f1_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_no_hits(self):
        assert f1_at_k([1, 2], {3}, 2) == 0.0

    def test_ndcg(self):
        # hits at ranks 2 and 5: DCG = 1/log2(3) + 1/log2(6)
        dcg = 1 / np.log2(3) + 1 / np.log2(6)
        # ideal: 3 relevant, k=5 → hits at ranks 1..3
        idcg = 1 / np.log2(2) + 1 / np.log2(3) + 1 / np.log2(4)
        assert ndcg_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(dcg / idcg)

    def test_ndcg_perfect_ranking_is_one(self):
        assert ndcg_at_k([1, 2, 3], {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_ndcg_ideal_caps_at_k(self):
        # 5 relevant items but k=2: perfect top-2 scores 1.0.
        assert ndcg_at_k([1, 2], {1, 2, 3, 4, 5}, 2) == pytest.approx(1.0)

    def test_hit_rate(self):
        assert hit_rate_at_k(RECOMMENDED, RELEVANT, 1) == 0.0
        assert hit_rate_at_k(RECOMMENDED, RELEVANT, 2) == 1.0

    def test_average_precision(self):
        # hits at ranks 2 (precision 1/2) and 5 (precision 2/5); min(3,5)=3
        expected = (0.5 + 0.4) / 3
        assert average_precision_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(expected)

    def test_reciprocal_rank(self):
        assert reciprocal_rank_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(0.5)
        assert reciprocal_rank_at_k([1, 2], {9}, 2) == 0.0


class TestEdgeCases:
    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_empty_relevant_gives_zero(self, name):
        assert METRICS[name]([1, 2, 3], set(), 3) == 0.0

    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_invalid_k_rejected(self, name):
        with pytest.raises(ValueError):
            METRICS[name]([1], {1}, 0)

    def test_short_recommendation_list(self):
        # Only 2 recommendations (both hits) but k=5: still divides by k.
        assert precision_at_k([20, 99], RELEVANT, 5) == pytest.approx(0.4)

    def test_empty_recommendations(self):
        assert precision_at_k([], RELEVANT, 5) == 0.0
        assert ndcg_at_k([], RELEVANT, 5) == 0.0


@st.composite
def ranking_case(draw):
    catalogue = list(range(30))
    recommended = draw(
        st.lists(st.sampled_from(catalogue), max_size=15, unique=True)
    )
    relevant = frozenset(draw(st.lists(st.sampled_from(catalogue), max_size=10)))
    k = draw(st.integers(1, 15))
    return recommended, relevant, k


class TestProperties:
    @settings(max_examples=150, deadline=None)
    @given(ranking_case())
    def test_all_metrics_bounded(self, case):
        recommended, relevant, k = case
        for fn in METRICS.values():
            value = fn(recommended, relevant, k)
            assert 0.0 <= value <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(ranking_case())
    def test_recall_monotone_in_k(self, case):
        recommended, relevant, k = case
        if k > 1:
            assert recall_at_k(recommended, relevant, k) >= recall_at_k(
                recommended, relevant, k - 1
            )

    @settings(max_examples=100, deadline=None)
    @given(ranking_case())
    def test_hit_rate_monotone_in_k(self, case):
        recommended, relevant, k = case
        if k > 1:
            assert hit_rate_at_k(recommended, relevant, k) >= hit_rate_at_k(
                recommended, relevant, k - 1
            )

    @settings(max_examples=100, deadline=None)
    @given(ranking_case())
    def test_f1_between_zero_and_min_pr(self, case):
        recommended, relevant, k = case
        f1 = f1_at_k(recommended, relevant, k)
        p = precision_at_k(recommended, relevant, k)
        r = recall_at_k(recommended, relevant, k)
        assert f1 <= max(p, r) + 1e-12
        if p > 0 and r > 0:
            assert f1 >= min(p, r) * 1e-9  # strictly positive

    @settings(max_examples=100, deadline=None)
    @given(ranking_case())
    def test_mrr_at_least_map_signal(self, case):
        recommended, relevant, k = case
        rr = reciprocal_rank_at_k(recommended, relevant, k)
        hits = hit_rate_at_k(recommended, relevant, k)
        assert (rr > 0) == (hits > 0)
