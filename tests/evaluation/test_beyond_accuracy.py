"""Tests for the beyond-accuracy evaluation (coverage/novelty/diversity)."""

import numpy as np
import pytest

from repro.evaluation.beyond_accuracy import (
    catalogue_coverage,
    collect_recommendations,
    evaluate_beyond_accuracy,
    intra_list_diversity,
    novelty,
)
from repro.evaluation.protocol import TemporalQuery


class TestCatalogueCoverage:
    def test_exact_fraction(self):
        lists = [[0, 1], [1, 2], [2, 3]]
        assert catalogue_coverage(lists, num_items=8) == pytest.approx(0.5)

    def test_full_coverage(self):
        assert catalogue_coverage([[0], [1]], num_items=2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            catalogue_coverage([[0]], num_items=0)


class TestNovelty:
    def test_popular_items_less_novel(self):
        popularity = np.array([100.0, 1.0])
        head = novelty([[0]], popularity)
        tail = novelty([[1]], popularity)
        assert tail > head

    def test_exact_value_uniform(self):
        popularity = np.array([1.0, 1.0])
        # Smoothed probs = 0.5 each → 1 bit.
        assert novelty([[0, 1]], popularity) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            novelty([], np.array([1.0]))
        with pytest.raises(ValueError):
            novelty([[0]], np.array([-1.0]))


class TestIntraListDiversity:
    def test_identical_items_zero_diversity(self):
        topics = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert intra_list_diversity([[0, 1]], topics) == pytest.approx(0.0)

    def test_orthogonal_items_full_diversity(self):
        topics = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert intra_list_diversity([[0, 1]], topics) == pytest.approx(1.0)

    def test_singleton_lists_skipped(self):
        topics = np.eye(3)
        with pytest.raises(ValueError):
            intra_list_diversity([[0]], topics)

    def test_mixed_lists(self):
        topics = np.eye(3)
        value = intra_list_diversity([[0], [0, 1]], topics)
        assert value == pytest.approx(1.0)


class TestEndToEnd:
    def test_full_report_on_fitted_model(self, tiny_split):
        from repro.core import TTCAM
        from repro.evaluation import build_queries

        model = TTCAM(4, 3, max_iter=20, seed=0).fit(tiny_split.train)
        queries = build_queries(tiny_split, max_queries=60, seed=0)
        item_topics = model.params_.topic_item_matrix().T
        report = evaluate_beyond_accuracy(
            model, queries, tiny_split.train, item_topics, k=5
        )
        assert 0 < report.coverage <= 1
        assert report.novelty > 0
        assert 0 <= report.diversity <= 1
        assert "coverage" in str(report)

    def test_weighting_increases_novelty(self, tiny_split):
        """The item-weighting scheme's signature: more novel lists."""
        from repro.core import TTCAM
        from repro.evaluation import build_queries

        queries = build_queries(tiny_split, max_queries=80, seed=0)
        plain = TTCAM(4, 3, max_iter=25, seed=0).fit(tiny_split.train)
        weighted = TTCAM(4, 3, max_iter=25, weighted=True, seed=0).fit(tiny_split.train)
        plain_lists = collect_recommendations(plain, queries, k=5)
        weighted_lists = collect_recommendations(weighted, queries, k=5)
        popularity = tiny_split.train.item_popularity()
        assert novelty(weighted_lists, popularity) > novelty(plain_lists, popularity)
