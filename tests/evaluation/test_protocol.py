"""Tests for the temporal evaluation protocol."""

import numpy as np
import pytest

from repro.data.cuboid import RatingCuboid
from repro.data.splits import Split, holdout_split
from repro.evaluation.protocol import TemporalQuery, build_queries, evaluate_ranking


def toy_split():
    """Hand-built split: train and test cuboids over N=2, T=2, V=5."""
    train = RatingCuboid.from_arrays(
        users=[0, 0, 1, 1],
        intervals=[0, 1, 0, 1],
        items=[0, 1, 2, 3],
        num_users=2,
        num_intervals=2,
        num_items=5,
    )
    test = RatingCuboid.from_arrays(
        users=[0, 1],
        intervals=[0, 1],
        items=[4, 0],
        num_users=2,
        num_intervals=2,
        num_items=5,
    )
    return Split(train=train, test=test)


class PerfectModel:
    """Scores each query's relevant items highest (oracle)."""

    def __init__(self, queries):
        self.lookup = {(q.user, q.interval): q.relevant for q in queries}
        self.num_items = 5

    def score_items(self, user, interval):
        scores = np.zeros(self.num_items)
        for v in self.lookup.get((user, interval), ()):
            scores[v] = 1.0
        return scores


class AntiModel:
    """Scores every item identically zero except a wrong one."""

    def score_items(self, user, interval):
        scores = np.zeros(5)
        scores[1] = 0.5
        return scores


class TestBuildQueries:
    def test_groups_by_user_interval(self):
        queries = build_queries(toy_split())
        assert len(queries) == 2
        by_key = {(q.user, q.interval): q for q in queries}
        assert by_key[(0, 0)].relevant == frozenset({4})
        assert by_key[(1, 1)].relevant == frozenset({0})

    def test_excludes_train_items_except_relevant(self):
        queries = build_queries(toy_split())
        by_key = {(q.user, q.interval): q for q in queries}
        # user 0 trained on items {0, 1}; neither is relevant → both excluded.
        assert set(by_key[(0, 0)].exclude) == {0, 1}
        # user 1 trained on {2, 3}, relevant {0} → {2, 3} excluded.
        assert set(by_key[(1, 1)].exclude) == {2, 3}

    def test_relevant_item_never_excluded(self, tiny_split):
        for query in build_queries(tiny_split):
            assert not (set(query.exclude) & query.relevant)

    def test_max_queries_subsamples(self, tiny_split):
        full = build_queries(tiny_split)
        capped = build_queries(tiny_split, max_queries=5, seed=0)
        assert len(capped) == 5
        assert set(capped) <= set(full)

    def test_max_queries_deterministic(self, tiny_split):
        a = build_queries(tiny_split, max_queries=5, seed=3)
        b = build_queries(tiny_split, max_queries=5, seed=3)
        assert a == b

    def test_min_relevant_filter(self, tiny_split):
        all_q = build_queries(tiny_split, min_relevant=1)
        big_q = build_queries(tiny_split, min_relevant=2)
        assert len(big_q) < len(all_q)
        assert all(len(q.relevant) >= 2 for q in big_q)


class TestEvaluateRanking:
    def test_perfect_model_scores_one(self):
        queries = build_queries(toy_split())
        report = evaluate_ranking(
            PerfectModel(queries), queries, ks=(1,), metrics=("precision", "ndcg")
        )
        assert report.at("precision", 1) == pytest.approx(1.0)
        assert report.at("ndcg", 1) == pytest.approx(1.0)

    def test_anti_model_scores_zero_at_one(self):
        queries = build_queries(toy_split())
        report = evaluate_ranking(AntiModel(), queries, ks=(1,), metrics=("precision",))
        assert report.at("precision", 1) == 0.0

    def test_report_structure(self):
        queries = build_queries(toy_split())
        report = evaluate_ranking(
            PerfectModel(queries), queries, ks=(5, 1, 3), metrics=("f1",)
        )
        assert report.ks == (1, 3, 5)  # sorted and deduped
        assert report.num_queries == 2
        assert len(report.series("f1")) == 3

    def test_unknown_metric_rejected(self):
        queries = build_queries(toy_split())
        with pytest.raises(ValueError, match="unknown metrics"):
            evaluate_ranking(PerfectModel(queries), queries, metrics=("bleu",))

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            evaluate_ranking(AntiModel(), [], ks=(1,))

    def test_excluded_items_cannot_hit(self):
        """A model that ranks excluded items top gets no credit for them."""
        queries = [
            TemporalQuery(user=0, interval=0, relevant=frozenset({4}), exclude=(1,))
        ]

        class ExcludedLover:
            def score_items(self, user, interval):
                return np.array([0.0, 1.0, 0.0, 0.0, 0.5])

        report = evaluate_ranking(ExcludedLover(), queries, ks=(1,), metrics=("precision",))
        # Item 1 is excluded, so item 4 tops the ranking → hit.
        assert report.at("precision", 1) == 1.0
