"""Tests for the topic-count grid search."""

import pytest

from repro.evaluation.model_selection import GridCell, select_topic_counts
import tests.conftest as c


@pytest.fixture(scope="module")
def cuboid():
    cub, _ = c.generate(c.tiny_config(num_users=150, seed=61))
    return cub


class TestValidation:
    def test_unknown_metric(self, cuboid):
        with pytest.raises(ValueError, match="metric"):
            select_topic_counts(cuboid, [2], [2], metric="accuracy")

    def test_empty_grid(self, cuboid):
        with pytest.raises(ValueError, match="non-empty"):
            select_topic_counts(cuboid, [], [2])


class TestNDCGSearch:
    def test_explores_full_grid(self, cuboid):
        result = select_topic_counts(
            cuboid, k1_grid=(2, 4), k2_grid=(2, 3), max_iter=15, max_queries=80
        )
        assert len(result.cells) == 4
        assert {(cell.k1, cell.k2) for cell in result.cells} == {
            (2, 2), (2, 3), (4, 2), (4, 3),
        }

    def test_best_is_argmax(self, cuboid):
        result = select_topic_counts(
            cuboid, k1_grid=(2, 4), k2_grid=(2, 3), max_iter=15, max_queries=80
        )
        assert result.higher_is_better
        assert result.best.score == max(cell.score for cell in result.cells)

    def test_format_table_marks_best(self, cuboid):
        result = select_topic_counts(
            cuboid, k1_grid=(2,), k2_grid=(2, 3), max_iter=10, max_queries=60
        )
        table = result.format_table()
        assert "<-- best" in table
        assert "K1=" in table


class TestPerplexitySearch:
    def test_best_is_argmin(self, cuboid):
        result = select_topic_counts(
            cuboid, k1_grid=(1, 4), k2_grid=(3,), metric="perplexity", max_iter=20
        )
        assert not result.higher_is_better
        assert result.best.score == min(cell.score for cell in result.cells)

    def test_adequate_beats_degenerate(self, cuboid):
        """The grid search should not pick the 1-topic degenerate model."""
        result = select_topic_counts(
            cuboid, k1_grid=(1, 4), k2_grid=(1, 3), metric="perplexity", max_iter=25
        )
        assert (result.best.k1, result.best.k2) != (1, 1)


class TestCustomFactory:
    def test_factory_injected(self, cuboid):
        from repro.core import TTCAM

        calls = []

        def factory(k1, k2):
            calls.append((k1, k2))
            return TTCAM(k1, k2, max_iter=5, seed=1)

        select_topic_counts(
            cuboid, k1_grid=(2,), k2_grid=(2,), model_factory=factory, max_queries=40
        )
        assert calls == [(2, 2)]
