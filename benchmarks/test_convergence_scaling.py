"""Section 3.2.3 claims — EM convergence speed and scalability.

The paper asserts that (a) "convergence can be achieved in a few
iterations (e.g., 50) because the model inference procedure using the
EM approach is fast", and (b) the E-step decomposes for MapReduce-style
parallelism, making training scalable to large datasets.

This bench checks both on the substitutes:

* TTCAM and ITCAM effectively converge within 50 EM iterations on all
  four dataset profiles: the first 50 iterations capture ≥94% (measured
  95–99.9%) of the total log-likelihood improvement of a 120-iteration
  run (the paper's "convergence can be achieved in a few iterations
  (e.g., 50)" read as a statement about quality saturation);
* training time grows near-linearly in the number of ratings (fit times
  across three dataset scales stay well under the quadratic growth
  bound);
* the partitioned EM produces byte-identical parameters to the serial
  fit (the correctness half of the MapReduce claim).

The timed unit is one full-profile TTCAM fit.
"""

import time

import numpy as np

from repro.core import ITCAM, TTCAM, PartitionedTTCAM
from repro.data import generate, profile

from conftest import save_table


def test_em_convergence_and_scaling(benchmark, digg_data, movielens_data, douban_data, delicious_data):
    datasets = {
        "digg": digg_data[0],
        "movielens": movielens_data[0],
        "douban": douban_data[0],
        "delicious": delicious_data[0],
    }

    lines = ["EM convergence across profiles (120-iteration runs):"]
    saturation = {}

    def improvement_share(trace, at: int) -> float:
        ll = trace.log_likelihood
        total = ll[-1] - ll[0]
        if total <= 0:
            return 1.0
        return (ll[min(at, len(ll)) - 1] - ll[0]) / total

    for name, cuboid in datasets.items():
        ttcam = TTCAM(10, 10, max_iter=120, tol=0.0, seed=0).fit(cuboid)
        itcam = ITCAM(10, max_iter=120, tol=0.0, seed=0).fit(cuboid)
        shares = (
            improvement_share(ttcam.trace_, 50),
            improvement_share(itcam.trace_, 50),
        )
        saturation[name] = shares
        lines.append(
            f"  {name:10s} share of total LL improvement reached by iter 50: "
            f"TTCAM {shares[0]:.4f}, ITCAM {shares[1]:.4f}"
        )

    # Scaling: training time across dataset sizes.
    lines.append("\nTTCAM fit time vs dataset size (digg profile):")
    sizes, times = [], []
    for scale in (0.25, 0.5, 1.0):
        cuboid, _ = generate(profile("digg", scale=scale))
        start = time.perf_counter()
        TTCAM(10, 10, max_iter=40, tol=0.0, seed=0).fit(cuboid)
        elapsed = time.perf_counter() - start
        sizes.append(cuboid.nnz)
        times.append(elapsed)
        lines.append(f"  nnz={cuboid.nnz:7d}  fit={elapsed:6.2f}s")
    save_table("convergence_scaling", "\n".join(lines))

    # Paper claim (a): 50 iterations capture essentially all the gain.
    for name, (tt_share, it_share) in saturation.items():
        assert tt_share >= 0.94, f"TTCAM at {tt_share:.4f} on {name}"
        assert it_share >= 0.94, f"ITCAM at {it_share:.4f} on {name}"

    # Paper claim (b), growth: near-linear in nnz. Allow generous slack
    # for constant overheads, but rule out quadratic growth.
    ratio_data = sizes[-1] / sizes[0]
    ratio_time = times[-1] / max(times[0], 1e-9)
    assert ratio_time < ratio_data ** 2

    # Paper claim (b), correctness: partitioned EM ≡ serial EM.
    cuboid = datasets["digg"]
    serial = TTCAM(8, 8, max_iter=10, seed=3).fit(cuboid)
    partitioned = PartitionedTTCAM(8, 8, max_iter=10, seed=3, num_partitions=6).fit(cuboid)
    np.testing.assert_allclose(
        partitioned.params_.phi, serial.params_.phi, atol=1e-9
    )

    benchmark.pedantic(
        lambda: TTCAM(10, 10, max_iter=40, tol=0.0, seed=1).fit(datasets["digg"]),
        rounds=1,
        iterations=1,
    )
