"""Shared fixtures and helpers for the per-table/per-figure benchmarks.

Every bench module regenerates one table or figure of the paper: it
fits the relevant models, prints the same rows/series the paper reports,
saves them under ``benchmarks/results/``, asserts the paper's
*qualitative* claims (who wins, where the shape bends), and times a
representative unit of work through ``pytest-benchmark``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines import BPRMF, BPTF, TimeTopicModel, UserTopicModel
from repro.core import ITCAM, TTCAM
from repro.data import generate, profile
from repro.evaluation import ModelSpec

RESULTS_DIR = Path(__file__).parent / "results"

# Scale/effort knobs shared by all benches: large enough for stable
# orderings, small enough that the full bench suite finishes in minutes.
# FOLDS=5 matches the paper's five-fold cross validation (80/20 splits).
SCALE = 0.5
MOVIELENS_SCALE = 0.75
EM_ITERS = 60
EM_ITERS_LONG = 100
QUERY_CAP = 250
FOLDS = 5


def save_table(name: str, text: str) -> Path:
    """Persist one experiment's printed table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


def standard_specs(k1: int = 10, k2: int = 12, iters: int = EM_ITERS) -> list[ModelSpec]:
    """The paper's eight-model comparison set (Section 5.2)."""
    return [
        ModelSpec("UT", lambda: UserTopicModel(num_topics=k1, max_iter=iters)),
        ModelSpec("TT", lambda: TimeTopicModel(num_topics=k2, max_iter=iters)),
        ModelSpec("BPRMF", lambda: BPRMF(num_epochs=25)),
        ModelSpec("BPTF", lambda: BPTF(num_epochs=30)),
        ModelSpec("ITCAM", lambda: ITCAM(num_user_topics=k1, max_iter=iters)),
        ModelSpec(
            "TTCAM",
            lambda: TTCAM(num_user_topics=k1, num_time_topics=k2, max_iter=iters),
        ),
        ModelSpec(
            "W-ITCAM",
            lambda: ITCAM(num_user_topics=k1, max_iter=iters, weighted=True),
        ),
        ModelSpec(
            "W-TTCAM",
            lambda: TTCAM(
                num_user_topics=k1, num_time_topics=k2, max_iter=iters, weighted=True
            ),
        ),
    ]


@pytest.fixture(scope="session")
def digg_data():
    """Digg-profile dataset at bench scale."""
    return generate(profile("digg", scale=SCALE))


@pytest.fixture(scope="session")
def movielens_data():
    """MovieLens-profile dataset at bench scale."""
    return generate(profile("movielens", scale=MOVIELENS_SCALE))


@pytest.fixture(scope="session")
def douban_data():
    """Douban-profile dataset at bench scale."""
    return generate(profile("douban", scale=SCALE))


@pytest.fixture(scope="session")
def delicious_data():
    """Delicious-profile dataset at bench scale."""
    return generate(profile("delicious", scale=SCALE))
