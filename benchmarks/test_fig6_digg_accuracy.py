"""Figure 6 — temporal recommendation accuracy on Digg.

Regenerates the Precision@k / NDCG@k / F1@k curves (k = 1..10) for the
paper's eight-model comparison on the Digg-profile dataset, with 2-fold
cross validation. Asserts the orderings the paper's Figure 6 shows:

* every TCAM-family model beats the non-temporal UT and BPRMF baselines
  (news consumption is context-driven);
* TT beats UT (temporal context matters more than taste on Digg);
* the best TCAM variant beats TT and BPTF.

Known reproduction deviation (documented in EXPERIMENTS.md): in our
generative substitute the item-weighted variants trade accuracy for
topic interpretability instead of gaining both, so W-TTCAM does not top
this chart as it does in the paper. The assertions therefore cover the
cross-family orderings, which reproduce robustly.

The timed unit is one full TTCAM fit on the training fold.
"""

from repro.core import TTCAM
from repro.data import holdout_split
from repro.evaluation import run_accuracy_experiment

from conftest import EM_ITERS, FOLDS, QUERY_CAP, save_table, standard_specs

KS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


def test_fig6_digg_accuracy(benchmark, digg_data):
    cuboid, _ = digg_data
    result = run_accuracy_experiment(
        cuboid,
        standard_specs(),
        ks=KS,
        metrics=("precision", "ndcg", "f1"),
        num_folds=FOLDS,
        max_queries=QUERY_CAP,
    )

    lines = [f"Figure 6: temporal accuracy on Digg ({FOLDS}-fold CV)"]
    for metric in ("precision", "ndcg", "f1"):
        lines.append(f"\n--- {metric}@k ---")
        lines.append(result.format_table(metric))
    save_table("fig6_digg_accuracy", "\n".join(lines))

    tcam_family = ("ITCAM", "TTCAM", "W-ITCAM", "W-TTCAM")
    for k in (5, 10):
        # TCAM family dominates the non-temporal baselines.
        for model in tcam_family:
            assert result.at(model, "ndcg", k) > result.at("UT", "ndcg", k)
            assert result.at(model, "ndcg", k) > result.at("BPRMF", "ndcg", k)
        # Temporal context beats pure taste on news (TT > UT).
        assert result.at("TT", "ndcg", k) > result.at("UT", "ndcg", k)
        # The best TCAM variant tops TT and BPTF.
        best = max(result.at(m, "ndcg", k) for m in tcam_family)
        assert best > result.at("TT", "ndcg", k)
        assert best > result.at("BPTF", "ndcg", k)

    split = holdout_split(cuboid, seed=0)
    benchmark.pedantic(
        lambda: TTCAM(10, 12, max_iter=EM_ITERS, seed=0).fit(split.train),
        rounds=1,
        iterations=1,
    )
