"""Ablation — decomposing the item-weighting scheme (iuf vs burst).

The weighting ``w(v,t) = iuf(v) · B(v,t)`` (Equation 19) has two factors
with different jobs: inverse user frequency demotes globally popular
items (for user-oriented topic quality) and the bursty degree promotes
event items (for time-oriented topic quality). This ablation fits TTCAM
on four trainings of the Digg substitute — unweighted, iuf-only,
burst-only, full — and reports both ranking accuracy (NDCG@5) and
time-oriented topic quality (mass on the generator's dedicated event
items).

Findings this bench asserts (and EXPERIMENTS.md discusses):

* the burst factor improves time-oriented topic quality at negligible
  accuracy cost;
* iuf carries the accuracy cost in our substitute (where logged
  popularity *is* true preference — the root cause of the
  W-vs-unweighted accuracy deviation from the paper) and does not help
  time-oriented topics;
* the full weighting's topic quality tracks the burst factor's.

The timed unit is one weighted-cuboid construction.
"""

import numpy as np

from repro.analysis.topics import topic_purity
from repro.core import TTCAM
from repro.core.weighting import apply_item_weighting, compute_item_weights
from repro.data import holdout_split
from repro.evaluation import build_queries, evaluate_ranking, novelty
from repro.evaluation.beyond_accuracy import collect_recommendations

from conftest import EM_ITERS, save_table

MODES = ("none", "iuf", "burst", "full")


def weighted_cuboid(train, weights, mode):
    if mode == "none":
        return train
    if mode == "iuf":
        per_entry = weights.iuf[train.items]
    elif mode == "burst":
        per_entry = weights.burst[train.intervals, train.items]
    else:
        per_entry = weights.iuf[train.items] * weights.burst[
            train.intervals, train.items
        ]
    return train.with_scores(train.scores * np.maximum(per_entry, 1e-6))


def event_topic_quality(model, truth):
    best = []
    for ids in truth.event_items.values():
        best.append(
            max(
                topic_purity(model.params_.phi_time[x], ids)
                for x in range(model.params_.num_time_topics)
            )
        )
    return float(np.mean(best))


def test_ablation_weighting_components(benchmark, digg_data):
    cuboid, truth = digg_data
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=250, seed=0)
    weights = compute_item_weights(split.train)

    popularity = split.train.item_popularity()
    rows = {}
    for mode in MODES:
        ndcgs, purities, novelties = [], [], []
        for seed in (0, 1):
            train = weighted_cuboid(split.train, weights, mode)
            model = TTCAM(10, 12, max_iter=EM_ITERS, seed=seed).fit(train)
            report = evaluate_ranking(model, queries, ks=(5,), metrics=("ndcg",))
            ndcgs.append(report.at("ndcg", 5))
            purities.append(event_topic_quality(model, truth))
            lists = collect_recommendations(model, queries[:150], k=5)
            novelties.append(novelty(lists, popularity))
        rows[mode] = {
            "ndcg": float(np.mean(ndcgs)),
            "purity": float(np.mean(purities)),
            "novelty": float(np.mean(novelties)),
        }

    lines = [
        "Ablation: weighting components on Digg",
        f"{'mode':10s}{'NDCG@5':>10s}{'event-topic mass':>18s}{'novelty(bits)':>15s}",
    ]
    for mode in MODES:
        lines.append(
            f"{mode:10s}{rows[mode]['ndcg']:10.4f}{rows[mode]['purity']:18.4f}"
            f"{rows[mode]['novelty']:15.2f}"
        )
    save_table("ablation_weighting", "\n".join(lines))

    # The burst factor improves time-oriented topic quality...
    assert rows["burst"]["purity"] > rows["none"]["purity"]
    # ...at modest accuracy cost (within 15% of unweighted).
    assert rows["burst"]["ndcg"] > 0.85 * rows["none"]["ndcg"]
    # The full weighting's topic quality stays close to burst-only and
    # never collapses below the unweighted level.
    assert rows["full"]["purity"] > 0.9 * rows["none"]["purity"]
    # iuf carries the accuracy cost (the documented deviation) without
    # buying time-oriented topic quality.
    assert rows["iuf"]["ndcg"] < rows["none"]["ndcg"]
    assert rows["iuf"]["purity"] <= rows["burst"]["purity"]
    # The full weighting's signature trade: markedly more novel lists.
    assert rows["full"]["novelty"] > rows["none"]["novelty"]

    benchmark.pedantic(
        lambda: apply_item_weighting(split.train, weights), rounds=5, iterations=1
    )
