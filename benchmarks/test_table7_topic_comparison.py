"""Table 7 — user-oriented vs time-oriented topics on Douban Movie.

The paper juxtaposes W-TTCAM's user-oriented topics (genre clusters with
flat temporal profiles) against its time-oriented topics (release
cohorts whose popularity peaks around release). The measurable version:

* time-oriented topics' empirical temporal profiles are far spikier than
  user-oriented topics' (peak-to-mean ratio);
* time-oriented topics load on cohort movies; user-oriented topics
  mostly do not.

The timed unit is the temporal-profile computation for all topics.
"""

import numpy as np

from repro.analysis.topics import spikiness, top_items, topic_purity, topic_temporal_profile
from repro.core import TTCAM

from conftest import EM_ITERS, save_table


def test_table7_user_vs_time_topics(benchmark, douban_data):
    cuboid, truth = douban_data
    labels = truth.item_labels
    model = TTCAM(10, 8, max_iter=EM_ITERS, weighted=True, seed=0).fit(cuboid)
    params = model.params_
    all_cohort_items = np.concatenate(list(truth.event_items.values()))

    user_rows = []
    for z in range(params.num_user_topics):
        profile = topic_temporal_profile(cuboid, params.phi[z])
        user_rows.append(
            {
                "spike": spikiness(profile),
                "cohort_mass": topic_purity(params.phi[z], all_cohort_items),
                "top": [l for _v, l, _p in top_items(params.phi[z], k=5, labels=labels)],
            }
        )
    time_rows = []
    for x in range(params.num_time_topics):
        profile = topic_temporal_profile(cuboid, params.phi_time[x])
        time_rows.append(
            {
                "spike": spikiness(profile),
                "cohort_mass": topic_purity(params.phi_time[x], all_cohort_items),
                "top": [
                    l for _v, l, _p in top_items(params.phi_time[x], k=5, labels=labels)
                ],
            }
        )

    lines = ["Table 7: user-oriented vs time-oriented topics on Douban (W-TTCAM)"]
    lines.append("\n--- user-oriented topics (genre-like) ---")
    for z, row in enumerate(user_rows):
        lines.append(
            f"U{z}: spikiness {row['spike']:.2f}, cohort mass {row['cohort_mass']:.2f} | "
            + ", ".join(row["top"])
        )
    lines.append("\n--- time-oriented topics (release cohorts) ---")
    for x, row in enumerate(time_rows):
        lines.append(
            f"T{x}: spikiness {row['spike']:.2f}, cohort mass {row['cohort_mass']:.2f} | "
            + ", ".join(row["top"])
        )
    mean_user_spike = float(np.mean([r["spike"] for r in user_rows]))
    mean_time_spike = float(np.mean([r["spike"] for r in time_rows]))
    lines.append(
        f"\nmean spikiness: user-oriented {mean_user_spike:.2f}, "
        f"time-oriented {mean_time_spike:.2f}"
    )
    save_table("table7_topic_comparison", "\n".join(lines))

    # Time-oriented topics are temporally localised; user-oriented stable.
    assert mean_time_spike > mean_user_spike * 1.3
    # Time-oriented topics carry far more cohort mass than user topics.
    mean_user_cohort = float(np.mean([r["cohort_mass"] for r in user_rows]))
    mean_time_cohort = float(np.mean([r["cohort_mass"] for r in time_rows]))
    assert mean_time_cohort > mean_user_cohort * 2

    benchmark.pedantic(
        lambda: [
            topic_temporal_profile(cuboid, params.phi_time[x])
            for x in range(params.num_time_topics)
        ],
        rounds=3,
        iterations=1,
    )
