"""Ablation — personalised λ_u vs one global λ.

Section 3.2 motivates estimating a *per-user* mixing weight "considering
the differences between users in personalities". This ablation fits
TTCAM twice on each of the Digg and MovieLens substitutes — once with
per-user λ_u (the paper's model) and once with a single shared λ — and
compares temporal top-k accuracy.

Finding (asserted): at our reduced per-user data volume the two are
statistically indistinguishable on Digg and the global λ is slightly
*better* on MovieLens — per-user weights estimated from ~50 ratings are
noisy, and a shared λ acts as a regulariser. The paper's gain from
personalisation presumably needs its data scale (hundreds to thousands
of ratings per user); EXPERIMENTS.md records this as a scale-dependent
result. The bench asserts the defensible part: personalisation is never
catastrophically worse, and the learned per-user weights do vary
substantially across users (the premise of personalising at all).

The timed unit is one personalised fit on Digg.
"""

import numpy as np

from repro.core import TTCAM
from repro.data import holdout_split
from repro.evaluation import build_queries, evaluate_ranking

from conftest import EM_ITERS, EM_ITERS_LONG, save_table


def run(cuboid, personalized, iters, k2):
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=250, seed=0)
    vals = []
    for seed in (0, 1):
        model = TTCAM(
            10, k2, max_iter=iters, personalized_lambda=personalized, seed=seed
        ).fit(split.train)
        vals.append(
            evaluate_ranking(model, queries, ks=(5, 10), metrics=("ndcg",))
        )
    return {
        5: float(np.mean([r.at("ndcg", 5) for r in vals])),
        10: float(np.mean([r.at("ndcg", 10) for r in vals])),
    }


def test_ablation_personalized_lambda(benchmark, digg_data, movielens_data):
    digg_cuboid, _ = digg_data
    ml_cuboid, _ = movielens_data

    results = {
        "Digg": {
            "personalised": run(digg_cuboid, True, EM_ITERS, k2=12),
            "global": run(digg_cuboid, False, EM_ITERS, k2=12),
        },
        "MovieLens": {
            "personalised": run(ml_cuboid, True, EM_ITERS_LONG, k2=6),
            "global": run(ml_cuboid, False, EM_ITERS_LONG, k2=6),
        },
    }

    lines = [
        "Ablation: personalised vs global mixing weight λ (NDCG@5 / NDCG@10)"
    ]
    for dataset, modes in results.items():
        for mode, vals in modes.items():
            lines.append(f"{dataset:10s} {mode:13s} {vals[5]:.4f} / {vals[10]:.4f}")
    save_table("ablation_lambda", "\n".join(lines))

    for dataset, modes in results.items():
        # Personalisation never hurts materially at this data scale.
        assert modes["personalised"][10] > modes["global"][10] * 0.9, dataset

    # The premise of personalising: users genuinely differ in λ.
    split = holdout_split(digg_cuboid, seed=0)
    model = TTCAM(10, 12, max_iter=EM_ITERS, seed=0).fit(split.train)
    lam = model.params_.lambda_u
    assert lam.std() > 0.02

    benchmark.pedantic(
        lambda: TTCAM(10, 12, max_iter=EM_ITERS, seed=2).fit(split.train),
        rounds=1,
        iterations=1,
    )
