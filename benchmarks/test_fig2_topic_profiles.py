"""Figure 2 — temporal profiles of a user-oriented vs a time-oriented topic.

The paper's motivating figure plots the normalised frequency over time
of one time-oriented topic ("Boston Bombing": a sharp spike) against one
user-oriented topic ("Animal Adoption": flat). We regenerate the same
contrast from a fitted W-TTCAM on the Delicious substitute: the spikiest
time-oriented topic vs the flattest user-oriented topic, printed as a
month-by-month series.

Assertions: the time-oriented topic's peak-to-mean ratio is a multiple
of the user-oriented one's, and its peak aligns with a generator event's
peak interval. The timed unit is the profile extraction.
"""

import numpy as np

from repro.analysis.topics import spikiness, top_items, topic_temporal_profile
from repro.core import TTCAM

from conftest import EM_ITERS, save_table


def test_fig2_topic_temporal_profiles(benchmark, delicious_data):
    cuboid, truth = delicious_data
    model = TTCAM(9, 10, max_iter=EM_ITERS, weighted=True, seed=0).fit(cuboid)
    params = model.params_

    # Pick the paper's pairing: the time-oriented topic tracking a named
    # news event (the "Boston Bombing" analogue is our michaeljackson
    # burst) against the most stable user-oriented topic.
    from repro.analysis.topics import topic_purity

    event = next(e for e in truth.config.events if e.name == "michaeljackson")
    dedicated = truth.event_items["michaeljackson"]
    purities = [
        topic_purity(params.phi_time[x], dedicated)
        for x in range(params.num_time_topics)
    ]
    spiky_idx = int(np.argmax(purities))
    user_profiles = [
        topic_temporal_profile(cuboid, params.phi[z])
        for z in range(params.num_user_topics)
    ]
    flat_idx = int(np.argmin([spikiness(p) for p in user_profiles]))
    spiky = topic_temporal_profile(cuboid, params.phi_time[spiky_idx])
    flat = user_profiles[flat_idx]

    labels = truth.item_labels
    lines = [
        "Figure 2: temporal profiles of a time-oriented vs user-oriented topic",
        f"time-oriented topic T{spiky_idx} "
        f"(top tags: {[l for _v, l, _p in top_items(params.phi_time[spiky_idx], 6, labels)]})",
        f"user-oriented topic U{flat_idx} "
        f"(top tags: {[l for _v, l, _p in top_items(params.phi[flat_idx], 6, labels)]})",
        f"{'interval':>9s}{'time-topic':>12s}{'user-topic':>12s}",
    ]
    for t in range(cuboid.num_intervals):
        lines.append(f"{t:9d}{spiky[t]:12.4f}{flat[t]:12.4f}")
    lines.append(
        f"spikiness: time-oriented {spikiness(spiky):.2f}, "
        f"user-oriented {spikiness(flat):.2f}"
    )
    save_table("fig2_topic_profiles", "\n".join(lines))

    # The Figure 2 contrast.
    assert spikiness(spiky) > 2.5 * spikiness(flat)
    # The spike coincides with the event's real-world peak.
    peak_interval = int(np.argmax(spiky))
    assert abs(peak_interval - event.peak) <= 3

    benchmark.pedantic(
        lambda: [
            topic_temporal_profile(cuboid, params.phi_time[x])
            for x in range(params.num_time_topics)
        ],
        rounds=3,
        iterations=1,
    )
