"""Ablation — distinct user/time topic sets vs one shared set.

Section 2 argues that prior mixtures (TimeUserLDA-style) that use **one
shared topic set** for both factors produce "confusing and noisy" topics
"since they conflate both user interest and temporal context", and that
TCAM's two distinct sets are what make user interest and temporal
context separately identifiable.

This ablation fits TTCAM (10 + 12 distinct topics) against
:class:`~repro.baselines.sharedtopics.SharedTopicsTCAM` (22 shared
topics — matched capacity) on the Digg substitute and measures *topic
identifiability* via temporal spikiness:

* TTCAM's two sets separate cleanly — time-oriented topics are far
  spikier than user-oriented ones (asserted ratio > 2);
* the shared set conflates: it produces no stable (flat) topic cluster —
  even its flattest third is spikier than TTCAM's user-oriented topics
  (asserted).

Accuracy is reported for completeness: on the strongly context-driven
Digg substitute the shared model is competitive (it can reallocate all
capacity to the dominant factor), so — as EXPERIMENTS.md discusses — the
paper's case for distinct sets rests on interpretability, which this
bench confirms, not on raw accuracy.

The timed unit is one shared-set fit.
"""

import numpy as np

from repro.analysis.topics import spikiness, topic_temporal_profile
from repro.baselines import SharedTopicsTCAM
from repro.core import TTCAM
from repro.data import holdout_split
from repro.evaluation import build_queries, evaluate_ranking

from conftest import EM_ITERS, save_table

K1, K2 = 10, 12


def test_ablation_shared_vs_distinct_topic_sets(benchmark, digg_data):
    cuboid, _ = digg_data
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=250, seed=0)

    distinct = TTCAM(K1, K2, max_iter=EM_ITERS, seed=0).fit(split.train)
    shared = SharedTopicsTCAM(num_topics=K1 + K2, max_iter=EM_ITERS, seed=0).fit(
        split.train
    )

    user_spikes = np.array(
        [
            spikiness(topic_temporal_profile(split.train, distinct.params_.phi[z]))
            for z in range(K1)
        ]
    )
    time_spikes = np.array(
        [
            spikiness(topic_temporal_profile(split.train, distinct.params_.phi_time[x]))
            for x in range(K2)
        ]
    )
    shared_spikes = np.sort(
        [
            spikiness(topic_temporal_profile(split.train, shared.phi_[z]))
            for z in range(K1 + K2)
        ]
    )

    acc = {}
    for name, model in (("TTCAM (distinct)", distinct), ("Shared set", shared)):
        report = evaluate_ranking(model, queries, ks=(5,), metrics=("ndcg",))
        acc[name] = report.at("ndcg", 5)

    lines = [
        "Ablation: distinct user/time topic sets (TTCAM) vs one shared set",
        f"\nNDCG@5: TTCAM {acc['TTCAM (distinct)']:.4f}, shared {acc['Shared set']:.4f}",
        "\ntemporal spikiness (peak-to-mean) of learned topics:",
        f"  TTCAM user-oriented : mean {user_spikes.mean():6.2f} "
        f"(range {user_spikes.min():.2f}-{user_spikes.max():.2f})",
        f"  TTCAM time-oriented : mean {time_spikes.mean():6.2f} "
        f"(range {time_spikes.min():.2f}-{time_spikes.max():.2f})",
        f"  shared set          : mean {shared_spikes.mean():6.2f} "
        f"(flattest third mean {shared_spikes[: (K1 + K2) // 3].mean():.2f})",
    ]
    save_table("ablation_shared_topics", "\n".join(lines))

    # Distinct sets separate cleanly: time topics ≫ user topics in
    # temporal concentration.
    assert time_spikes.mean() > 2 * user_spikes.mean()
    # The shared set conflates: no flat "stable interest" topic cluster —
    # even its flattest third is spikier than TTCAM's user topics.
    flattest_third = shared_spikes[: (K1 + K2) // 3].mean()
    assert flattest_third > user_spikes.mean()

    benchmark.pedantic(
        lambda: SharedTopicsTCAM(num_topics=K1 + K2, max_iter=EM_ITERS, seed=1).fit(
            split.train
        ),
        rounds=1,
        iterations=1,
    )
