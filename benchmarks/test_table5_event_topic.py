"""Table 5 — the "Michael Jackson" time-oriented topic on Delicious.

The paper contrasts the top tags of the MJ event topic detected by TT,
TTCAM and W-TTCAM: the unweighted models rank generic popular tags
("news", "headline", "world") at the top, while W-TTCAM promotes
event-specific bursty tags ("michaeljackson", "mj", "moonwalk").

Our Delicious substitute ships a named ``michaeljackson`` event with
dedicated bursty tags, so the claim becomes measurable:

* W-TTCAM's best MJ topic places more probability mass on the dedicated
  event tags than TTCAM's (and than TT's);
* W-TTCAM's top-8 contains fewer globally-popular head tags than the
  unweighted models'.

The timed unit is the W-TTCAM fit.
"""

import numpy as np

from repro.analysis.topics import top_items, topic_purity
from repro.baselines import TimeTopicModel
from repro.core import TTCAM

from conftest import EM_ITERS, save_table

EVENT = "michaeljackson"


def best_event_topic(phi_time, dedicated):
    purities = [topic_purity(phi_time[x], dedicated) for x in range(phi_time.shape[0])]
    best = int(np.argmax(purities))
    return best, purities[best]


def head_count(topic_row, head, k=8):
    return sum(1 for v, _label, _p in top_items(topic_row, k=k) if v in head)


def test_table5_michael_jackson_topic(benchmark, delicious_data):
    cuboid, truth = delicious_data
    dedicated = truth.event_items[EVENT]
    labels = truth.item_labels
    head = set(np.argsort(-cuboid.item_popularity())[:20].tolist())

    models = {
        "TT": TimeTopicModel(num_topics=10, max_iter=EM_ITERS, seed=0).fit(cuboid),
        "TTCAM": TTCAM(9, 10, max_iter=EM_ITERS, seed=0).fit(cuboid),
        "W-TTCAM": TTCAM(9, 10, max_iter=EM_ITERS, weighted=True, seed=0).fit(cuboid),
    }

    lines = [f'Table 5: time-oriented topic "{EVENT}" detected on Delicious']
    stats = {}
    for name, model in models.items():
        phi_time = model.phi_time_ if name == "TT" else model.params_.phi_time
        topic, purity = best_event_topic(phi_time, dedicated)
        tops = top_items(phi_time[topic], k=8, labels=labels)
        popular = head_count(phi_time[topic], head)
        stats[name] = {"purity": purity, "popular_in_top8": popular}
        lines.append(f"\n{name} (event-tag mass {purity:.3f}, popular tags in top-8: {popular})")
        for _v, label, p in tops:
            lines.append(f"    {label:32s}{p:8.4f}")
    save_table("table5_event_topic", "\n".join(lines))

    # Every model must actually detect the event: its best topic holds far
    # more mass on the dedicated tags than a uniform topic would.
    uniform_mass = len(dedicated) / cuboid.num_items
    for name in stats:
        assert stats[name]["purity"] > 5 * uniform_mass, name
    # The weighting never increases popular-tag contamination at the top.
    assert (
        stats["W-TTCAM"]["popular_in_top8"]
        <= min(stats["TTCAM"]["popular_in_top8"], stats["TT"]["popular_in_top8"])
    )
    # Note: in the paper W-TTCAM also strictly increases event-tag purity;
    # in our substitute that margin is configuration-sensitive (the
    # unweighted models already isolate events when K2 covers the event
    # count) — see EXPERIMENTS.md and the Table 6 bench, where the
    # contamination-reduction effect is unambiguous.

    benchmark.pedantic(
        lambda: TTCAM(9, 10, max_iter=EM_ITERS, weighted=True, seed=1).fit(cuboid),
        rounds=1,
        iterations=1,
    )
