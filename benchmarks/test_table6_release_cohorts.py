"""Table 6 — the "T2007" release-cohort topic on Douban Movie.

The paper shows that TTCAM's 2007 time-oriented topic is polluted by
evergreen classics ("Forrest Gump", "Roman Holiday"), while W-TTCAM's
top movies were all actually released in 2007.

Our Douban substitute ships release-year cohort events (``y2006`` …
``y2010``) with dedicated movie ids. The measurable claim: for each
cohort, W-TTCAM's best matching topic puts more of its top-8 on the
cohort's own movies than TTCAM's, fewer on the global popularity head.

The timed unit is the W-TTCAM fit on Douban.
"""

import numpy as np

from repro.analysis.topics import top_items, topic_purity
from repro.core import TTCAM

from conftest import EM_ITERS, save_table


def cohort_stats(model, truth, head):
    """Per-cohort: best topic purity and top-8 composition."""
    phi_time = model.params_.phi_time
    stats = {}
    for name, dedicated in truth.event_items.items():
        purities = [
            topic_purity(phi_time[x], dedicated) for x in range(phi_time.shape[0])
        ]
        best = int(np.argmax(purities))
        tops = top_items(phi_time[best], k=8)
        dedicated_set = set(int(v) for v in dedicated)
        stats[name] = {
            "purity": purities[best],
            "own_in_top8": sum(1 for v, _l, _p in tops if v in dedicated_set),
            "popular_in_top8": sum(1 for v, _l, _p in tops if v in head),
            "topic": best,
        }
    return stats


def test_table6_release_cohort_topics(benchmark, douban_data):
    cuboid, truth = douban_data
    labels = truth.item_labels
    head = set(np.argsort(-cuboid.item_popularity())[:20].tolist())

    plain = TTCAM(10, 8, max_iter=EM_ITERS, seed=0).fit(cuboid)
    weighted = TTCAM(10, 8, max_iter=EM_ITERS, weighted=True, seed=0).fit(cuboid)
    stats = {"TTCAM": cohort_stats(plain, truth, head),
             "W-TTCAM": cohort_stats(weighted, truth, head)}

    lines = ["Table 6: release-cohort time-oriented topics on Douban Movie"]
    for model_name, model in (("TTCAM", plain), ("W-TTCAM", weighted)):
        lines.append(f"\n=== {model_name} ===")
        for cohort, s in stats[model_name].items():
            lines.append(
                f"{cohort}: cohort-mass {s['purity']:.3f}, own movies in top-8 "
                f"{s['own_in_top8']}/8, popular in top-8 {s['popular_in_top8']}"
            )
            tops = top_items(model.params_.phi_time[s["topic"]], k=8, labels=labels)
            for _v, label, p in tops:
                lines.append(f"    {label:32s}{p:8.4f}")
    save_table("table6_release_cohorts", "\n".join(lines))

    # Aggregate paper-direction assertions over all cohorts: the weighted
    # model keeps the cohorts' own movies at the top while cutting the
    # evergreen-classics contamination (the paper's "Forrest Gump in
    # T2007" pathology).
    total_popular = {
        name: sum(s["popular_in_top8"] for s in stats[name].values())
        for name in stats
    }
    mean_own = {
        name: float(np.mean([s["own_in_top8"] for s in stats[name].values()]))
        for name in stats
    }
    assert total_popular["W-TTCAM"] < total_popular["TTCAM"]
    assert mean_own["W-TTCAM"] >= mean_own["TTCAM"] - 1.0
    # Both models' cohort topics are dominated by the cohort's movies.
    for name in stats:
        assert mean_own[name] >= 5.0, name

    benchmark.pedantic(
        lambda: TTCAM(10, 8, max_iter=EM_ITERS, weighted=True, seed=1).fit(cuboid),
        rounds=1,
        iterations=1,
    )
