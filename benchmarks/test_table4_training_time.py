"""Table 4 — offline model training time: BPRMF vs TCAM vs BPTF.

The paper reports training minutes on Douban Movie and MovieLens:
BPRMF fastest, TCAM a small multiple of BPRMF, BPTF an order of
magnitude slower. Absolute times depend on implementation language and
hardware (the paper used Java on a 32 GB server); the shape we assert is
the paper's headline — **BPTF is by far the slowest and TCAM stays
within a small multiple of BPRMF** — using epoch/iteration budgets
proportional to the paper's settings.

The timed unit is the TCAM (TTCAM) fit on the Douban-profile dataset.
"""

import time

from repro.baselines import BPRMF, BPTF
from repro.core import TTCAM

from conftest import save_table


def fit_timings(cuboid):
    models = {
        "BPRMF": BPRMF(num_factors=32, num_epochs=30, seed=0),
        "TCAM": TTCAM(10, 10, max_iter=60, tol=0.0, seed=0),
        "BPTF": BPTF(num_factors=32, num_epochs=60, negative_ratio=3, seed=0),
    }
    timings = {}
    for name, model in models.items():
        start = time.perf_counter()
        model.fit(cuboid)
        timings[name] = time.perf_counter() - start
    return timings


def test_table4_training_time(benchmark, douban_data, movielens_data):
    datasets = {
        "Douban Movie": douban_data[0],
        "MovieLens": movielens_data[0],
    }

    lines = ["Table 4: offline training time (seconds)"]
    lines.append(f"{'dataset':16s}{'BPRMF':>10s}{'TCAM':>10s}{'BPTF':>10s}")
    results = {}
    for name, cuboid in datasets.items():
        timings = fit_timings(cuboid)
        results[name] = timings
        lines.append(
            f"{name:16s}{timings['BPRMF']:10.2f}{timings['TCAM']:10.2f}"
            f"{timings['BPTF']:10.2f}"
        )
    save_table("table4_training_time", "\n".join(lines))

    for name, timings in results.items():
        # The paper's headline ordering: BPTF is by far the slowest.
        assert timings["BPTF"] > timings["TCAM"], name
        assert timings["BPTF"] > timings["BPRMF"], name
        # TCAM stays within a small multiple of BPRMF (paper: ~1.3–1.5×).
        assert timings["TCAM"] < timings["BPRMF"] * 10, name

    benchmark.pedantic(
        lambda: TTCAM(10, 10, max_iter=60, tol=0.0, seed=0).fit(datasets["Douban Movie"]),
        rounds=1,
        iterations=1,
    )
