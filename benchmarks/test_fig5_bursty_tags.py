"""Figure 5 — bursty tags vs popular tags around the swine-flu event.

The paper plots the temporal frequency of the top six tags of the
"swine flu" topic: three bursty tags ("flu", "mexico", "swineflu") spike
together at the outbreak, while three popular tags ("news", "health",
"death") stay frequent all year and carry little event information.

On the Delicious substitute, the ``swineflu`` event's dedicated tags
must (a) rank among the burstiest items of the dataset, (b) spike at the
event's peak interval, and (c) be far burstier than the global
popularity head. The timed unit is the full burst-statistics scan.
"""

import numpy as np

from repro.analysis.bursts import burstiness, item_frequency_curve, top_bursty_items, top_popular_items

from conftest import save_table


def test_fig5_bursty_vs_popular_tags(benchmark, delicious_data):
    cuboid, truth = delicious_data
    event = next(e for e in truth.config.events if e.name == "swineflu")
    dedicated = truth.event_items["swineflu"]
    labels = truth.item_labels

    # Filter one-off tail noise: a "burst" needs real volume behind it.
    bursty = top_bursty_items(cuboid, k=30, min_popularity=20.0)
    popular = top_popular_items(cuboid, k=10)

    lines = ["Figure 5: bursty vs popular tags (swine-flu event)"]
    lines.append(f"\nevent peak interval: {event.peak}")
    lines.append("\n--- dedicated swineflu tags ---")
    dedicated_burst = []
    for v in dedicated[:6]:
        curve = item_frequency_curve(cuboid, int(v))
        peak_t = int(np.argmax(curve))
        dedicated_burst.append(burstiness(curve))
        lines.append(
            f"{labels[int(v)]:28s} burstiness {burstiness(curve):6.1f} "
            f"peak interval {peak_t}"
        )
    lines.append("\n--- top popular tags ---")
    popular_burst = []
    for profile in popular[:6]:
        popular_burst.append(profile.burstiness)
        lines.append(
            f"{profile.label:28s} burstiness {profile.burstiness:6.1f} "
            f"total {profile.total_popularity:7.0f}"
        )
    save_table("fig5_bursty_tags", "\n".join(lines))

    # Dedicated event tags are much burstier than the popular head.
    assert np.mean(dedicated_burst) > 3 * np.mean(popular_burst)
    # Their spikes align with the real-world event (the outbreak).
    for v in dedicated[:6]:
        curve = item_frequency_curve(cuboid, int(v))
        assert abs(int(np.argmax(curve)) - event.peak) <= 3
    # Co-bursting (the paper's "flu"/"mexico"/"swineflu" synchrony): the
    # dedicated tags peak within a tight window of one another.
    peaks = [
        int(np.argmax(item_frequency_curve(cuboid, int(v)))) for v in dedicated[:6]
    ]
    assert max(peaks) - min(peaks) <= 4

    benchmark.pedantic(lambda: top_bursty_items(cuboid, k=30), rounds=3, iterations=1)
