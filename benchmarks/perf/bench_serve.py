"""Batch serving throughput microbenchmark → ``BENCH_serve.json``.

Measures end-to-end queries/sec of :meth:`TemporalRecommender.recommend_batch`
— the GEMM-based batch engine, in float64 (exact) and float32 (selection
only) modes — against the per-query Threshold-Algorithm path, over a
skewed multi-interval query workload on synthetic TTCAM parameters at
the same catalogue scales as ``bench_topk.py``. Each entry also records
the serving-cache hit rate reached during the measured run, so the
trajectory tracks cache behaviour alongside raw throughput.

The script additionally *verifies* the serving contracts while it
measures: float64 batch results must match the per-query engine exactly,
and float32 must return the same top-k item sets.

A separate **million-item tier** measures the mmap + quantized serving
path (``repro.recommend.paramstore`` / ``repro.recommend.quantize``) at
V=1M: eager float64 against mmap-backed float64/float16/int8 selection,
one spawned process per variant so each reports its own peak RSS. All
variants must return bitwise-identical top-k to eager float64, and
mmap+int8 must peak materially below eager loading. ``--smoke`` runs the
same tier at V=2000.

A **page-in tier** records the cold-start cost the serving service's
workers pay: a spawned process evicts the sidecar from the page cache
(``posix_fadvise(DONTNEED)``), maps a fresh ParamStore and reports
first-touch per-query p50/p99 latency against a warm second pass.

Run ``python benchmarks/perf/bench_serve.py`` (with ``src`` on
``PYTHONPATH``), or ``make bench-serve``.
"""

from __future__ import annotations

import multiprocessing
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perf_common import best_time, make_parser

from repro.analysis.benchjson import BenchEntry, append_entries, default_context
from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel, save_params
from repro.recommend import TemporalRecommender

#: (num_user_topics, num_items, k, num_queries) per scale.
SCALES = [
    (16, 5_000, 10, 256),
    (24, 20_000, 10, 256),
    (32, 50_000, 20, 256),
]
SMOKE_SCALES = [(6, 500, 5, 32)]

#: The mmap/quantized tier: each variant runs in its own spawned process
#: so ``ru_maxrss`` (a since-process-start high-water mark) isolates that
#: variant's resident footprint. Same tuple shape as ``SCALES``.
MILLION_SCALE = (16, 1_000_000, 10, 256)
SMOKE_MILLION_SCALE = (6, 2_000, 5, 48)
#: (variant name, selection dtype, serve from the mmap sidecar).
MILLION_VARIANTS = (
    ("eager-f64", "float64", False),
    ("mmap-f64", "float64", True),
    ("mmap-f16", "float16", True),
    ("mmap-int8", "int8", True),
)
#: Row block for the million tier: the (rows, V) score workspace is the
#: dominant allocation at V=1M, and it exists in every variant — keep it
#: small so the measured RSS contrast is parameters, not workspace.
MILLION_ROW_BLOCK = 32

NUM_USERS = 2_000
NUM_INTERVALS = 48
#: Per-query TA is orders of magnitude slower; time it on a subset.
SINGLE_QUERY_SAMPLE = 25
#: Queries cross-checked for exactness per scale.
VERIFY_SAMPLE = 16


def make_model(num_user_topics: int, num_items: int, seed: int = 0) -> LoadedModel:
    """Synthetic fitted TTCAM parameters at serving scale.

    Direct Dirichlet draws rather than an EM fit — the benchmark measures
    retrieval, and a 50k-item fit would dwarf it. Shapes and simplex
    structure match a genuinely fitted model.
    """
    rng = np.random.default_rng(seed)
    num_time_topics = max(2, num_user_topics // 2)
    params = TTCAMParameters(
        theta=rng.dirichlet(np.full(num_user_topics, 0.3), size=NUM_USERS),
        phi=rng.dirichlet(np.full(num_items, 0.05), size=num_user_topics),
        theta_time=rng.dirichlet(np.full(num_time_topics, 0.3), size=NUM_INTERVALS),
        phi_time=rng.dirichlet(np.full(num_items, 0.05), size=num_time_topics),
        lambda_u=rng.beta(3.0, 3.0, size=NUM_USERS),
    )
    return LoadedModel(params)


def make_queries(num_queries: int, seed: int = 0) -> list[tuple[int, int]]:
    """Skewed workload: uniform users, zipf-hot intervals."""
    rng = np.random.default_rng(seed)
    users = rng.integers(0, NUM_USERS, num_queries)
    intervals = np.minimum(rng.zipf(1.5, num_queries) - 1, NUM_INTERVALS - 1)
    return [(int(u), int(t)) for u, t in zip(users, intervals)]


def verify_contracts(model: LoadedModel, queries, k: int) -> None:
    """Assert the batch engine's exactness and float32 set stability."""
    rec = TemporalRecommender(model, method="ta")
    sample = queries[:VERIFY_SAMPLE]
    batch64 = rec.recommend_batch(sample, k=k)
    batch32 = rec.recommend_batch(sample, k=k, dtype="float32")
    for (user, interval), r64, r32 in zip(sample, batch64, batch32):
        single = rec.recommend(user, interval, k=k)
        assert r64.items == single.items and r64.scores == single.scores, (
            f"float64 batch diverged from ta_topk at query ({user}, {interval})"
        )
        assert set(r32.items) == set(r64.items), (
            f"float32 top-k set diverged at query ({user}, {interval})"
        )


def _params_nbytes(model: LoadedModel) -> int:
    """Bytes held by the model's parameter arrays (the eager footprint)."""
    names = ("theta", "phi", "theta_time", "phi_time", "lambda_u")
    params = model.params_
    return int(
        sum(
            np.asarray(getattr(params, name)).nbytes
            for name in names
            if hasattr(params, name)
        )
    )


def _million_child(spec, snapshot, queries, k, repeats, queue) -> None:
    """One million-tier variant, measured in a fresh process.

    Loads the snapshot (eagerly or through the mmap sidecar), serves the
    workload, and reports throughput, cache hit rate, this process's
    peak RSS, and a bitwise sample of results for the parent to
    cross-check against the eager float64 reference.
    """
    from repro.analysis.benchjson import peak_rss_bytes

    variant, dtype, use_mmap = spec
    model = LoadedModel.from_file(snapshot, mmap=use_mmap)
    rec = TemporalRecommender(model, serve_dtype=dtype)
    def run():
        rec.recommend_batch(queries, k=k, row_block=MILLION_ROW_BLOCK)

    elapsed = best_time(run, repeats)
    sample = rec.recommend_batch(
        queries[:VERIFY_SAMPLE], k=k, row_block=MILLION_ROW_BLOCK
    )
    queue.put(
        {
            "variant": variant,
            "dtype": dtype,
            "mmap": use_mmap,
            "qps": len(queries) / elapsed,
            "cache_hit_rate": rec.serving_cache.stats().hit_rate,
            "peak_rss_bytes": peak_rss_bytes(),
            "params_nbytes": _params_nbytes(model),
            "sample": [
                [list(r.items), [float(s).hex() for s in r.scores]] for r in sample
            ],
        }
    )


def million_tier(args, smoke: bool, context: dict) -> list[BenchEntry]:
    """Run the mmap + quantized serving tier, one process per variant.

    Writes a snapshot with its mmap sidecar to a temporary directory,
    then spawns each variant as its own process: ``ru_maxrss`` is a
    process-lifetime high-water mark, so sharing a process would let the
    first variant's footprint mask every later one. The parent asserts
    all variants return bitwise-identical top-k (items, scores, order)
    to the eager float64 reference, and — at full scale — that mmap+int8
    serving peaks materially below eager loading.
    """
    num_topics, num_items, k, num_queries = (
        SMOKE_MILLION_SCALE if smoke else MILLION_SCALE
    )
    queries = make_queries(num_queries, seed=43)
    workdir = Path(tempfile.mkdtemp(prefix="bench-serve-1m-"))
    entries = []
    try:
        model = make_model(num_topics, num_items, seed=17)
        snapshot = save_params(model.params_, workdir / "model.npz", mmap_layout=True)
        del model
        spawn = multiprocessing.get_context("spawn")
        results = []
        for spec in MILLION_VARIANTS:
            queue = spawn.SimpleQueue()
            proc = spawn.Process(
                target=_million_child,
                args=(spec, str(snapshot), queries, k, args.repeats, queue),
            )
            proc.start()
            proc.join()
            if proc.exitcode != 0 or queue.empty():
                raise RuntimeError(
                    f"million-tier child {spec[0]} failed (exit {proc.exitcode})"
                )
            results.append(queue.get())
        reference = results[0]
        for payload in results[1:]:
            assert payload["sample"] == reference["sample"], (
                f"{payload['variant']} top-k diverged from eager float64"
            )
        for payload in results:
            name = (
                f"serve/v{num_items}-z{num_topics}-k{k}/{payload['variant']}"
            )
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(payload["qps"], 2),
                    unit="queries/sec",
                    params={
                        "num_items": num_items,
                        "num_topics": num_topics,
                        "k": k,
                        "num_queries": num_queries,
                        "variant": payload["variant"],
                        "dtype": payload["dtype"],
                        "mmap": payload["mmap"],
                        "row_block": MILLION_ROW_BLOCK,
                        "cache_hit_rate": round(payload["cache_hit_rate"], 4),
                        "peak_rss_bytes": payload["peak_rss_bytes"],
                        "params_nbytes": payload["params_nbytes"],
                    },
                    context=context,
                )
            )
            rss = payload["peak_rss_bytes"]
            rss_mib = "n/a" if rss is None else f"{rss / 2**20:8.1f} MiB"
            print(
                f"{name:45s} {payload['qps']:10.1f} queries/sec  "
                f"(peak RSS {rss_mib}, cache hit-rate "
                f"{payload['cache_hit_rate']:.2f})"
            )
        if not smoke:
            eager_rss = results[0]["peak_rss_bytes"]
            int8_rss = results[-1]["peak_rss_bytes"]
            if eager_rss is not None and int8_rss is not None:
                ratio = int8_rss / eager_rss
                print(f"mmap-int8 peak RSS is {ratio:.2f}x eager-f64")
                assert ratio <= 0.7, (
                    f"mmap+int8 serving peaked at {ratio:.2f}x eager RSS "
                    "(need <= 0.7x: the mmap tier must materially cut memory)"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return entries


def _pagein_child(snapshot, queries, k, queue) -> None:
    """Cold-vs-warm first-touch latency on a fresh mmap ParamStore.

    Runs in its own spawned process so no parent mapping keeps the store
    warm. Evicts the sidecar's page-cache residency with
    ``posix_fadvise(DONTNEED)`` (best-effort; clean pages drop without
    privileges), then times every query of a first pass over the freshly
    mapped store — the early queries pay the page-in cost — and a second
    warm pass over the same queries for contrast.
    """
    import os
    import time

    from repro.recommend.paramstore import store_dir

    sidecar = store_dir(snapshot)
    for path in sorted(sidecar.glob("*")):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        finally:
            os.close(fd)
    model = LoadedModel.from_file(snapshot, mmap=True)
    rec = TemporalRecommender(model)

    def timed_pass():
        samples = []
        for query in queries:
            start = time.perf_counter()
            rec.recommend_batch([query], k=k, row_block=MILLION_ROW_BLOCK)
            samples.append(time.perf_counter() - start)
        return samples

    cold = timed_pass()
    warm = timed_pass()
    queue.put({"cold": cold, "warm": warm})


def pagein_tier(args, smoke: bool, context: dict) -> list[BenchEntry]:
    """Record cold-snapshot page-in first-touch p50/p99 latency.

    The serving service spawns workers against snapshots nothing has
    mapped yet, so the first queries after a cold start pay mmap
    page-in; this tier pins that cost in the trajectory.
    """
    num_topics, num_items, k, num_queries = (
        SMOKE_MILLION_SCALE if smoke else MILLION_SCALE
    )
    queries = make_queries(num_queries, seed=53)
    workdir = Path(tempfile.mkdtemp(prefix="bench-serve-pagein-"))
    entries = []
    try:
        model = make_model(num_topics, num_items, seed=17)
        snapshot = save_params(model.params_, workdir / "model.npz", mmap_layout=True)
        del model
        spawn = multiprocessing.get_context("spawn")
        queue = spawn.SimpleQueue()
        proc = spawn.Process(
            target=_pagein_child, args=(str(snapshot), queries, k, queue)
        )
        proc.start()
        proc.join()
        if proc.exitcode != 0 or queue.empty():
            raise RuntimeError(f"page-in child failed (exit {proc.exitcode})")
        payload = queue.get()
        for phase in ("cold", "warm"):
            samples = np.sort(np.asarray(payload[phase]))
            p50 = float(np.percentile(samples, 50) * 1e3)
            p99 = float(np.percentile(samples, 99) * 1e3)
            name = f"serve/v{num_items}-z{num_topics}-k{k}/pagein-{phase}"
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(p50, 4),
                    unit="ms",
                    params={
                        "num_items": num_items,
                        "num_topics": num_topics,
                        "k": k,
                        "num_queries": num_queries,
                        "phase": phase,
                        "p50_ms": round(p50, 4),
                        "p99_ms": round(p99, 4),
                        "max_ms": round(float(samples[-1]) * 1e3, 4),
                    },
                    context=context,
                )
            )
            print(
                f"{name:45s} p50 {p50:8.3f} ms  p99 {p99:8.3f} ms  "
                f"(max {samples[-1] * 1e3:.3f} ms)"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return entries


def main(argv=None) -> int:
    parser = make_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else SCALES
    context = default_context()
    entries = []
    rates: dict[tuple[int, str], float] = {}

    for num_topics, num_items, k, num_queries in scales:
        model = make_model(num_topics, num_items, seed=17)
        queries = make_queries(num_queries, seed=29)
        verify_contracts(model, queries, k)

        single_queries = queries[:SINGLE_QUERY_SAMPLE]
        variants = {
            "single-ta": (
                TemporalRecommender(model, method="ta"),
                lambda r: [r.recommend(u, t, k=k) for u, t in single_queries],
                len(single_queries),
                "float64",
            ),
            "batch-f64": (
                TemporalRecommender(model),
                lambda r: r.recommend_batch(queries, k=k),
                num_queries,
                "float64",
            ),
            "batch-f32": (
                TemporalRecommender(model, serve_dtype="float32"),
                lambda r: r.recommend_batch(queries, k=k),
                num_queries,
                "float32",
            ),
        }
        for variant, (rec, run, served, dtype) in variants.items():
            rate = served / best_time(lambda: run(rec), args.repeats)
            rates[(num_items, variant)] = rate
            hit_rate = rec.serving_cache.stats().hit_rate
            name = f"serve/v{num_items}-z{num_topics}-k{k}/{variant}"
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(rate, 2),
                    unit="queries/sec",
                    params={
                        "num_items": num_items,
                        "num_topics": num_topics,
                        "k": k,
                        "num_queries": served,
                        "variant": variant,
                        "dtype": dtype,
                        "cache_hit_rate": round(hit_rate, 4),
                    },
                    context=context,
                )
            )
            print(f"{name:45s} {rate:10.1f} queries/sec  (cache hit-rate {hit_rate:.2f})")

    entries.extend(million_tier(args, args.smoke, context))
    entries.extend(pagein_tier(args, args.smoke, context))

    if not args.smoke:
        largest = max(s[1] for s in scales)
        speedup = rates[(largest, "batch-f64")] / rates[(largest, "single-ta")]
        print(f"batch-f64 vs single-ta at V={largest}: {speedup:.1f}x")
        assert speedup >= 3.0, (
            f"batched serving is only {speedup:.1f}x single-query TA (need >= 3x)"
        )

    path = Path(args.output_dir) / "BENCH_serve.json"
    append_entries(path, entries)
    print(f"appended {len(entries)} entries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
