"""Batch serving throughput microbenchmark → ``BENCH_serve.json``.

Measures end-to-end queries/sec of :meth:`TemporalRecommender.recommend_batch`
— the GEMM-based batch engine, in float64 (exact) and float32 (selection
only) modes — against the per-query Threshold-Algorithm path, over a
skewed multi-interval query workload on synthetic TTCAM parameters at
the same catalogue scales as ``bench_topk.py``. Each entry also records
the serving-cache hit rate reached during the measured run, so the
trajectory tracks cache behaviour alongside raw throughput.

The script additionally *verifies* the serving contracts while it
measures: float64 batch results must match the per-query engine exactly,
and float32 must return the same top-k item sets.

Run ``python benchmarks/perf/bench_serve.py`` (with ``src`` on
``PYTHONPATH``), or ``make bench-serve``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perf_common import best_time, make_parser

from repro.analysis.benchjson import BenchEntry, append_entries, default_context
from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel
from repro.recommend import TemporalRecommender

#: (num_user_topics, num_items, k, num_queries) per scale.
SCALES = [
    (16, 5_000, 10, 256),
    (24, 20_000, 10, 256),
    (32, 50_000, 20, 256),
]
SMOKE_SCALES = [(6, 500, 5, 32)]

NUM_USERS = 2_000
NUM_INTERVALS = 48
#: Per-query TA is orders of magnitude slower; time it on a subset.
SINGLE_QUERY_SAMPLE = 25
#: Queries cross-checked for exactness per scale.
VERIFY_SAMPLE = 16


def make_model(num_user_topics: int, num_items: int, seed: int = 0) -> LoadedModel:
    """Synthetic fitted TTCAM parameters at serving scale.

    Direct Dirichlet draws rather than an EM fit — the benchmark measures
    retrieval, and a 50k-item fit would dwarf it. Shapes and simplex
    structure match a genuinely fitted model.
    """
    rng = np.random.default_rng(seed)
    num_time_topics = max(2, num_user_topics // 2)
    params = TTCAMParameters(
        theta=rng.dirichlet(np.full(num_user_topics, 0.3), size=NUM_USERS),
        phi=rng.dirichlet(np.full(num_items, 0.05), size=num_user_topics),
        theta_time=rng.dirichlet(np.full(num_time_topics, 0.3), size=NUM_INTERVALS),
        phi_time=rng.dirichlet(np.full(num_items, 0.05), size=num_time_topics),
        lambda_u=rng.beta(3.0, 3.0, size=NUM_USERS),
    )
    return LoadedModel(params)


def make_queries(num_queries: int, seed: int = 0) -> list[tuple[int, int]]:
    """Skewed workload: uniform users, zipf-hot intervals."""
    rng = np.random.default_rng(seed)
    users = rng.integers(0, NUM_USERS, num_queries)
    intervals = np.minimum(rng.zipf(1.5, num_queries) - 1, NUM_INTERVALS - 1)
    return [(int(u), int(t)) for u, t in zip(users, intervals)]


def verify_contracts(model: LoadedModel, queries, k: int) -> None:
    """Assert the batch engine's exactness and float32 set stability."""
    rec = TemporalRecommender(model, method="ta")
    sample = queries[:VERIFY_SAMPLE]
    batch64 = rec.recommend_batch(sample, k=k)
    batch32 = rec.recommend_batch(sample, k=k, dtype="float32")
    for (user, interval), r64, r32 in zip(sample, batch64, batch32):
        single = rec.recommend(user, interval, k=k)
        assert r64.items == single.items and r64.scores == single.scores, (
            f"float64 batch diverged from ta_topk at query ({user}, {interval})"
        )
        assert set(r32.items) == set(r64.items), (
            f"float32 top-k set diverged at query ({user}, {interval})"
        )


def main(argv=None) -> int:
    parser = make_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else SCALES
    context = default_context()
    entries = []
    rates: dict[tuple[int, str], float] = {}

    for num_topics, num_items, k, num_queries in scales:
        model = make_model(num_topics, num_items, seed=17)
        queries = make_queries(num_queries, seed=29)
        verify_contracts(model, queries, k)

        single_queries = queries[:SINGLE_QUERY_SAMPLE]
        variants = {
            "single-ta": (
                TemporalRecommender(model, method="ta"),
                lambda r: [r.recommend(u, t, k=k) for u, t in single_queries],
                len(single_queries),
                "float64",
            ),
            "batch-f64": (
                TemporalRecommender(model),
                lambda r: r.recommend_batch(queries, k=k),
                num_queries,
                "float64",
            ),
            "batch-f32": (
                TemporalRecommender(model, serve_dtype="float32"),
                lambda r: r.recommend_batch(queries, k=k),
                num_queries,
                "float32",
            ),
        }
        for variant, (rec, run, served, dtype) in variants.items():
            rate = served / best_time(lambda: run(rec), args.repeats)
            rates[(num_items, variant)] = rate
            hit_rate = rec.serving_cache.stats().hit_rate
            name = f"serve/v{num_items}-z{num_topics}-k{k}/{variant}"
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(rate, 2),
                    unit="queries/sec",
                    params={
                        "num_items": num_items,
                        "num_topics": num_topics,
                        "k": k,
                        "num_queries": served,
                        "variant": variant,
                        "dtype": dtype,
                        "cache_hit_rate": round(hit_rate, 4),
                    },
                    context=context,
                )
            )
            print(f"{name:45s} {rate:10.1f} queries/sec  (cache hit-rate {hit_rate:.2f})")

    if not args.smoke:
        largest = max(s[1] for s in scales)
        speedup = rates[(largest, "batch-f64")] / rates[(largest, "single-ta")]
        print(f"batch-f64 vs single-ta at V={largest}: {speedup:.1f}x")
        assert speedup >= 3.0, (
            f"batched serving is only {speedup:.1f}x single-query TA (need >= 3x)"
        )

    path = Path(args.output_dir) / "BENCH_serve.json"
    append_entries(path, entries)
    print(f"appended {len(entries)} entries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
