"""Top-k retrieval throughput microbenchmark → ``BENCH_topk.json``.

Measures queries/sec of the Threshold-Algorithm engines — the paper's
priority-queue TA (``ta``) and the block-vectorised production engine
(``batched-ta``) — over random topic–item matrices at several catalogue
scales, against the brute-force full scan as the floor. Appends one
entry per (scale, engine) to the ``BENCH_topk.json`` trajectory.

Run ``python benchmarks/perf/bench_topk.py`` (with ``src`` on
``PYTHONPATH``), or ``make bench-perf``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perf_common import best_time, make_parser

from repro.analysis.benchjson import BenchEntry, append_entries, default_context
from repro.recommend.bruteforce import bruteforce_topk
from repro.recommend.ranking import QuerySpace
from repro.recommend.threshold import SortedTopicLists, batched_ta_topk, ta_topk

#: (num_topics, num_items, k, num_queries) per scale. The final tier is
#: the million-item catalogue from the mmap/quantized serving work; the
#: per-query engines stay tractable there because the TA threshold
#: converges long before a full scan.
SCALES = [
    (16, 5_000, 10, 40),
    (24, 20_000, 10, 40),
    (32, 50_000, 20, 25),
    (16, 1_000_000, 10, 10),
]
SMOKE_SCALES = [(6, 500, 5, 5)]


def make_queries(num_topics, num_items, num_queries, seed=0):
    """Random skewed query workload over one shared topic–item matrix."""
    rng = np.random.default_rng(seed)
    matrix = rng.dirichlet(np.full(num_items, 0.05), size=num_topics)
    weights = rng.dirichlet(np.full(num_topics, 0.3), size=num_queries)
    return [QuerySpace(weights=w, item_matrix=matrix) for w in weights]


def main(argv=None) -> int:
    parser = make_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else SCALES
    context = default_context()
    entries = []

    for num_topics, num_items, k, num_queries in scales:
        queries = make_queries(num_topics, num_items, num_queries, seed=29)
        lists = SortedTopicLists.build(queries[0].item_matrix)
        engines = {
            "ta": lambda: [ta_topk(q, lists, k) for q in queries],
            "batched-ta": lambda: [batched_ta_topk(q, lists, k) for q in queries],
            "bruteforce": lambda: [bruteforce_topk(q, k) for q in queries],
        }
        for engine_name, run in engines.items():
            rate = num_queries / best_time(run, args.repeats)
            name = f"topk/v{num_items}-z{num_topics}-k{k}/{engine_name}"
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(rate, 2),
                    unit="queries/sec",
                    params={
                        "num_items": num_items,
                        "num_topics": num_topics,
                        "k": k,
                        "num_queries": num_queries,
                        "engine": engine_name,
                    },
                    context=context,
                )
            )
            print(f"{name:45s} {rate:10.1f} queries/sec")

    path = Path(args.output_dir) / "BENCH_topk.json"
    append_entries(path, entries)
    print(f"appended {len(entries)} entries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
