"""E-step throughput microbenchmark → ``BENCH_em.json``.

Measures full EM-iteration throughput (ratings processed per second,
E-step plus the cheap M-step normalisation) for TTCAM at several
``(R, K1, K2)`` scales, across three execution paths:

* ``legacy``      — the single-pass vectorised step (``engine=None``);
* ``blocked-t1``  — the blocked engine, one worker;
* ``blocked-tN``  — the blocked engine on N threads.

In ``--smoke`` mode a fourth variant, ``blocked-t1-sanitize``, runs the
blocked engine under the runtime sanitizer and the harness asserts the
sanitize-off variants constructed no ``Sanitizer`` at all — the
structural "zero overhead when off" guarantee from
``docs/static-analysis.md``.

Each configuration appends one entry to the ``BENCH_em.json`` trajectory.
The acceptance bar for the engine (≥1.5× threaded over single-thread at
the largest scale) is only reachable on a multi-core host — every entry
records ``cpu_count`` so trajectories from different machines are never
naively compared.

Run ``python benchmarks/perf/bench_em.py`` (with ``src`` on
``PYTHONPATH``), or ``make bench-perf``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perf_common import best_time, make_parser, synthetic_cuboid

from repro.analysis.benchjson import BenchEntry, append_entries, default_context
from repro.core import TTCAM, EMEngineConfig
from repro.tooling.sanitize import Sanitizer, sanitize_enabled

#: (requested ratings, K1, K2) per scale; the last is "the largest bench
#: scale" referenced by the acceptance criteria.
SCALES = [
    (20_000, 8, 8),
    (80_000, 16, 12),
    (200_000, 32, 16),
]
SMOKE_SCALES = [(2_000, 4, 3)]
EM_ITERS = 4
SMOKE_ITERS = 2


def fit_throughput(cuboid, k1, k2, iters, engine, repeats) -> float:
    """Ratings/sec of a full ``TTCAM.fit`` at exactly ``iters`` iterations."""
    model = lambda: TTCAM(  # noqa: E731 - rebuilt per run so no state carries over
        k1, k2, max_iter=iters, tol=-1.0, seed=7, engine=engine
    ).fit(cuboid)
    elapsed = best_time(model, repeats)
    return cuboid.nnz * iters / elapsed


def main(argv=None) -> int:
    parser = make_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--threads",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker threads for the threaded variant",
    )
    parser.add_argument(
        "--block-size", type=int, default=32_768, help="engine block size"
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else SCALES
    iters = SMOKE_ITERS if args.smoke else EM_ITERS
    threads = max(2, args.threads)
    context = default_context()
    context["em_iters"] = iters
    entries = []

    for requested, k1, k2 in scales:
        cuboid = synthetic_cuboid(requested, seed=13)
        variants = {
            "legacy": None,
            "blocked-t1": EMEngineConfig(block_size=args.block_size),
            f"blocked-t{threads}": EMEngineConfig(
                block_size=args.block_size, threads=threads
            ),
        }
        if args.smoke:
            variants["blocked-t1-sanitize"] = EMEngineConfig(
                block_size=args.block_size, sanitize=True
            )
        rates = {}
        constructed_before = Sanitizer.constructed
        for variant, engine in variants.items():
            rate = fit_throughput(cuboid, k1, k2, iters, engine, args.repeats)
            if variant == "blocked-t1" and not sanitize_enabled():
                # zero-overhead-off proof: the sanitize-off runs so far
                # must not have instantiated a single Sanitizer.
                assert Sanitizer.constructed == constructed_before, (
                    "sanitize-off engine run constructed a Sanitizer"
                )
            rates[variant] = rate
            name = f"em/ttcam/r{cuboid.nnz}-k{k1}x{k2}/{variant}"
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(rate, 1),
                    unit="ratings/sec",
                    params={
                        "ratings": int(cuboid.nnz),
                        "k1": k1,
                        "k2": k2,
                        "block_size": args.block_size,
                        "threads": 1 if engine is None else engine.threads,
                        "variant": variant,
                    },
                    context=context,
                )
            )
            print(f"{name:55s} {rate/1e6:8.3f} M ratings/sec")
        blocked_gain = rates["blocked-t1"] / rates["legacy"]
        threaded_gain = rates[f"blocked-t{threads}"] / rates["blocked-t1"]
        print(
            f"  -> blocked/legacy {blocked_gain:.2f}x, "
            f"threaded({threads})/blocked {threaded_gain:.2f}x "
            f"[{os.cpu_count()} cpu]"
        )
        if "blocked-t1-sanitize" in rates:
            overhead = rates["blocked-t1"] / rates["blocked-t1-sanitize"]
            print(f"  -> sanitizer overhead when ON: {overhead:.2f}x slower")

    path = Path(args.output_dir) / "BENCH_em.json"
    append_entries(path, entries)
    print(f"appended {len(entries)} entries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
