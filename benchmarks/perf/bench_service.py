"""Process-parallel serving service benchmark → ``BENCH_service.json``.

Measures the end-to-end ``tcam serve`` stack — asyncio front-end,
adaptive micro-batching, ``N`` spawned worker processes sharing one
zero-copy snapshot — under a concurrent closed-loop client workload.
For each worker count the script records requests/sec plus client-side
p50/p99 request latency, and every worker's resident footprint in both
RSS and PSS (proportional set size: shared pages divided among the
processes mapping them, the honest metric for a zero-copy fleet).

The script *verifies* while it measures:

* a sample of service responses must be **bitwise identical** (items,
  score bits, tie order) to a direct in-process ``recommend_batch`` on
  the same snapshot;
* at full scale, mean per-worker PSS at the highest worker count must be
  materially below the single-worker PSS — memory grows sub-linearly in
  workers or the zero-copy claim is false;
* one fleet-wide hot swap is exercised under the live service, and every
  run must end in a clean SIGTERM drain (exit 0, "drained cleanly").

Run ``python benchmarks/perf/bench_service.py`` (with ``src`` on
``PYTHONPATH``), or ``make bench-service``; ``--smoke`` runs a tiny
configuration for CI.
"""

from __future__ import annotations

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perf_common import make_parser

from repro.analysis.benchjson import BenchEntry, append_entries, default_context
from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel, save_params
from repro.recommend import TemporalRecommender
from repro.serving_service import ServiceClient

#: (num_user_topics, num_items, k) of the served snapshot. The catalogue
#: is deliberately large enough that the snapshot's derived arrays — not
#: the interpreter — dominate each worker's footprint, so the PSS
#: contrast actually measures snapshot sharing.
SCALE = (16, 100_000, 10)
SMOKE_SCALE = (6, 500, 5)
#: Worker-process counts benchmarked (>= 2 counts, per the acceptance bar).
WORKER_COUNTS = (1, 2, 4)
SMOKE_WORKER_COUNTS = (1, 2)
#: Closed-loop clients and requests per client per worker count.
CLIENTS, REQUESTS_PER_CLIENT = 4, 100
SMOKE_CLIENTS, SMOKE_REQUESTS = 2, 20

NUM_USERS = 2_000
NUM_INTERVALS = 48
VERIFY_SAMPLE = 16
_PORT_RE = re.compile(r"tcam serve: \d+ workers on [\w.\-]+:(\d+)")


def make_params(num_topics: int, num_items: int, seed: int) -> TTCAMParameters:
    """Synthetic fitted TTCAM parameters at serving scale."""
    rng = np.random.default_rng(seed)
    num_time_topics = max(2, num_topics // 2)
    return TTCAMParameters(
        theta=rng.dirichlet(np.full(num_topics, 0.3), size=NUM_USERS),
        phi=rng.dirichlet(np.full(num_items, 0.05), size=num_topics),
        theta_time=rng.dirichlet(np.full(num_time_topics, 0.3), size=NUM_INTERVALS),
        phi_time=rng.dirichlet(np.full(num_items, 0.05), size=num_time_topics),
        lambda_u=rng.beta(3.0, 3.0, size=NUM_USERS),
    )


def make_queries(num_queries: int, seed: int) -> list[tuple[int, int]]:
    """Skewed workload: uniform users, zipf-hot intervals."""
    rng = np.random.default_rng(seed)
    users = rng.integers(0, NUM_USERS, num_queries)
    intervals = np.minimum(rng.zipf(1.5, num_queries) - 1, NUM_INTERVALS - 1)
    return [(int(u), int(t)) for u, t in zip(users, intervals)]


class ServeProcess:
    """One ``tcam serve`` subprocess; parses its bound port at start-up."""

    def __init__(self, snapshot: str, workers: int, generation_file: str) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
                "serve",
                "--model",
                snapshot,
                "--port",
                "0",
                "--workers",
                str(workers),
                "--generation-file",
                generation_file,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.port = self._wait_for_port()

    def _wait_for_port(self, timeout_s: float = 120.0) -> int:
        assert self.proc.stdout is not None
        deadline = time.monotonic() + timeout_s
        lines = []
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            match = _PORT_RE.search(line)
            if match:
                return int(match.group(1))
        self.proc.kill()
        # Reap the killed process (and close its stdout pipe) before
        # raising, or it lingers as a zombie for the rest of the run.
        self.proc.communicate()
        raise RuntimeError(f"tcam serve never reported a port; output: {lines!r}")

    def drain(self, timeout_s: float = 120.0) -> str:
        """SIGTERM the service and return its remaining output."""
        self.proc.send_signal(signal.SIGTERM)
        remaining, _ = self.proc.communicate(timeout=timeout_s)
        if self.proc.returncode != 0:
            raise RuntimeError(
                f"tcam serve exited {self.proc.returncode}; output: {remaining!r}"
            )
        if "drained cleanly" not in remaining:
            raise RuntimeError(f"no clean drain marker in output: {remaining!r}")
        return remaining


def _client_loop(port, queries, k, rounds, latencies, errors) -> None:
    """One closed-loop client thread: single-query requests, timed."""
    try:
        with ServiceClient("127.0.0.1", port, timeout=120) as client:
            for index in range(rounds):
                query = queries[index % len(queries)]
                start = time.perf_counter()
                reply = client.recommend([query], k=k)
                latencies.append(time.perf_counter() - start)
                if reply["results"][0] is None:
                    raise RuntimeError("dropped query")
    except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
        errors.append(f"{type(exc).__name__}: {exc}")


def verify_bitwise(port: int, params: TTCAMParameters, queries, k: int) -> None:
    """Service responses must equal direct recommend_batch bitwise."""
    sample = queries[:VERIFY_SAMPLE]
    direct = TemporalRecommender(LoadedModel(params)).recommend_batch(sample, k=k)
    with ServiceClient("127.0.0.1", port, timeout=120) as client:
        reply = client.recommend(sample, k=k)
    for query, row, expected in zip(sample, reply["results"], direct):
        assert row["items"] == [int(i) for i in expected.items], (
            f"service items diverged from direct batch at query {query}"
        )
        assert [float(s).hex() for s in row["scores"]] == [
            float(s).hex() for s in expected.scores
        ], f"service scores not bitwise-identical at query {query}"


def measure_worker_count(
    snapshot: str,
    workdir: Path,
    params: TTCAMParameters,
    workers: int,
    k: int,
    clients: int,
    rounds: int,
    swap_snapshot: str | None,
) -> dict:
    """One worker count: start, load, verify, optionally swap, drain."""
    service = ServeProcess(snapshot, workers, str(workdir / f"gen-w{workers}.json"))
    try:
        queries = make_queries(256, seed=29)
        verify_bitwise(service.port, params, queries, k)

        latencies: list[float] = []
        errors: list[str] = []
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(service.port, queries[seed::clients] or queries, k, rounds,
                      latencies, errors),
            )
            for seed in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise RuntimeError(f"client errors: {errors}")
        if len(latencies) != clients * rounds:
            raise RuntimeError(
                f"dropped requests: {len(latencies)} != {clients * rounds}"
            )

        with ServiceClient("127.0.0.1", service.port, timeout=120) as client:
            status = client.status()
            if swap_snapshot is not None:
                swap = client.publish(swap_snapshot)
                if not swap["published"]:
                    raise RuntimeError(f"fleet hot swap failed: {swap}")
                after = client.status()
                if any(w["swaps"] != 1 for w in after["workers"]):
                    raise RuntimeError(f"swap did not land fleet-wide: {after}")
    finally:
        service.drain()

    ordered = np.sort(np.asarray(latencies))
    return {
        "workers": workers,
        "qps": len(latencies) / elapsed,
        "p50_ms": float(np.percentile(ordered, 50) * 1e3),
        "p99_ms": float(np.percentile(ordered, 99) * 1e3),
        "requests": len(latencies),
        "clients": clients,
        "rss_bytes": [w["rss_bytes"] for w in status["workers"]],
        "pss_bytes": [w["pss_bytes"] for w in status["workers"]],
        "swapped": swap_snapshot is not None,
    }


def main(argv=None) -> int:
    parser = make_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)

    num_topics, num_items, k = SMOKE_SCALE if args.smoke else SCALE
    worker_counts = SMOKE_WORKER_COUNTS if args.smoke else WORKER_COUNTS
    clients = SMOKE_CLIENTS if args.smoke else CLIENTS
    rounds = SMOKE_REQUESTS if args.smoke else REQUESTS_PER_CLIENT

    context = default_context()
    workdir = Path(tempfile.mkdtemp(prefix="bench-service-"))
    entries = []
    try:
        params = make_params(num_topics, num_items, seed=17)
        snapshot = save_params(params, workdir / "model.npz")
        swap_candidate = save_params(
            make_params(num_topics, num_items, seed=23), workdir / "candidate.npz"
        )
        measurements = []
        for workers in worker_counts:
            swap = str(swap_candidate) if workers == max(worker_counts) else None
            result = measure_worker_count(
                str(snapshot), workdir, params, workers, k, clients, rounds, swap
            )
            measurements.append(result)
            name = f"service/v{num_items}-z{num_topics}-k{k}/w{workers}"
            entries.append(
                BenchEntry(
                    name=name,
                    value=round(result["qps"], 2),
                    unit="requests/sec",
                    params={
                        "num_items": num_items,
                        "num_topics": num_topics,
                        "k": k,
                        "workers": workers,
                        "clients": clients,
                        "requests": result["requests"],
                        "p50_ms": round(result["p50_ms"], 3),
                        "p99_ms": round(result["p99_ms"], 3),
                        "rss_bytes": result["rss_bytes"],
                        "pss_bytes": result["pss_bytes"],
                        "hot_swapped": result["swapped"],
                    },
                    context=context,
                )
            )
            pss = [b for b in result["pss_bytes"] if b is not None]
            pss_mib = (
                f"{sum(pss) / len(pss) / 2**20:6.1f} MiB/worker" if pss else "n/a"
            )
            print(
                f"{name:45s} {result['qps']:8.1f} req/s  "
                f"p50 {result['p50_ms']:6.2f} ms  p99 {result['p99_ms']:6.2f} ms  "
                f"(PSS {pss_mib})"
            )

        if not args.smoke:
            single = measurements[0]["pss_bytes"]
            widest = measurements[-1]["pss_bytes"]
            if all(b is not None for b in single + widest):
                mean_single = sum(single) / len(single)
                mean_widest = sum(widest) / len(widest)
                ratio = mean_widest / mean_single
                print(
                    f"mean per-worker PSS at w={worker_counts[-1]} is "
                    f"{ratio:.2f}x the single-worker PSS"
                )
                assert ratio <= 0.9, (
                    f"per-worker PSS barely shrank ({ratio:.2f}x) at "
                    f"{worker_counts[-1]} workers: snapshot sharing is not "
                    "zero-copy (need <= 0.9x)"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    path = Path(args.output_dir) / "BENCH_service.json"
    append_entries(path, entries)
    print(f"appended {len(entries)} entries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
