"""Streaming ingestion throughput microbenchmark → ``BENCH_stream.json``.

Measures the three rates that bound the streaming pipeline of
:mod:`repro.streaming`:

* **append** — durable events/sec into the write-ahead log (fsync per
  batch append, the WAL's ``sync="always"`` contract);
* **ingest** — events/sec folded into a fitted TTCAM by the
  :class:`StreamIngestor` (micro-batched partial EM with drift
  tracking and cadence checkpoints);
* **concurrent** — sustained ingest events/sec while serving threads
  hammer :meth:`TemporalRecommender.recommend_batch` on the same
  process, with the folded snapshot hot-swapped in at the end — the
  zero-downtime loop. The concurrent serving queries/sec is recorded
  alongside, so the trajectory catches either side starving the other.

The script also verifies the hot-swap contract while it measures:
every concurrently served batch must be complete and single-generation.

Run ``python benchmarks/perf/bench_stream.py`` (with ``src`` on
``PYTHONPATH``), or ``make bench-stream``.
"""

from __future__ import annotations

import sys
import threading
import time
import warnings
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perf_common import best_time, make_parser

from repro.analysis.benchjson import BenchEntry, append_entries, default_context
from repro.core.params import TTCAMParameters
from repro.core.serialize import LoadedModel
from repro.recommend import TemporalRecommender
from repro.streaming import EventLog, SnapshotPublisher, StreamEvent, StreamIngestor

#: (num_events, num_users, num_items) per scale.
SCALES = [
    (5_000, 300, 1_500),
    (20_000, 600, 4_000),
]
SMOKE_SCALES = [(400, 50, 120)]

NUM_INTERVALS = 12
NUM_USER_TOPICS = 8
NUM_TIME_TOPICS = 4
BATCH_EVENTS = 512
SERVING_THREADS = 2
QUERY_BATCH = 128


def make_params(num_users: int, num_items: int, seed: int = 0) -> TTCAMParameters:
    """Synthetic fitted TTCAM parameters (Dirichlet draws, serving-shaped)."""
    rng = np.random.default_rng(seed)
    return TTCAMParameters(
        theta=rng.dirichlet(np.full(NUM_USER_TOPICS, 0.3), size=num_users),
        phi=rng.dirichlet(np.full(num_items, 0.05), size=NUM_USER_TOPICS),
        theta_time=rng.dirichlet(np.full(NUM_TIME_TOPICS, 0.3), size=NUM_INTERVALS),
        phi_time=rng.dirichlet(np.full(num_items, 0.05), size=NUM_TIME_TOPICS),
        lambda_u=rng.beta(3.0, 3.0, size=num_users),
    )


def make_events(count: int, num_users: int, num_items: int, seed: int = 0):
    """An in-range random event stream (zipf-hot items)."""
    rng = np.random.default_rng(seed)
    users = rng.integers(0, num_users, count)
    intervals = rng.integers(0, NUM_INTERVALS, count)
    items = np.minimum(rng.zipf(1.3, count) - 1, num_items - 1)
    scores = rng.random(count) + 0.5
    return [
        StreamEvent(user=int(u), interval=int(t), item=int(i), score=float(s))
        for u, t, i, s in zip(users, intervals, items, scores)
    ]


def append_all(directory: Path, events, chunk: int = 1024) -> None:
    """Append the stream in producer-sized durable chunks."""
    with EventLog(directory, segment_events=8192) as log:
        for start in range(0, len(events), chunk):
            log.append(events[start : start + chunk])


def run_ingest(directory: Path, params, checkpoints: Path) -> StreamIngestor:
    ingestor = StreamIngestor(
        EventLog(directory),
        params,
        checkpoints,
        batch_events=BATCH_EVENTS,
        checkpoint_every=8,
        resume=False,
    )
    ingestor.run()
    return ingestor


def concurrent_rates(root: Path, params, events) -> tuple[float, float]:
    """(ingest events/sec, serving queries/sec) under combined load."""
    append_all(root / "wal", events)
    model = LoadedModel(params)
    recommender = TemporalRecommender(model)
    publisher = SnapshotPublisher(recommender)
    rng = np.random.default_rng(11)
    queries = [
        (int(u), int(t))
        for u, t in zip(
            rng.integers(0, params.num_users, QUERY_BATCH),
            rng.integers(0, NUM_INTERVALS, QUERY_BATCH),
        )
    ]
    served = [0]
    stop = threading.Event()

    def reader() -> None:
        count = 0
        while not stop.is_set():
            results, statuses = recommender.recommend_batch_with_status(queries, k=10)
            assert len(results) == len(queries), "dropped queries under swap load"
            assert len({s.generation for s in statuses}) == 1, "torn batch"
            count += len(results)
        served[0] += count

    threads = [threading.Thread(target=reader) for _ in range(SERVING_THREADS)]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    ingestor = run_ingest(root / "wal", params, root / "ckpt-conc")
    publisher.publish(ingestor.params)
    elapsed = time.perf_counter() - start
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    assert recommender.swap_count == 1
    return len(events) / elapsed, served[0] / elapsed


def main(argv=None) -> int:
    parser = make_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else SCALES
    context = default_context()
    entries = []

    for num_events, num_users, num_items in scales:
        params = make_params(num_users, num_items, seed=23)
        events = make_events(num_events, num_users, num_items, seed=31)
        label = f"stream/e{num_events}-v{num_items}"

        with TemporaryDirectory() as raw:
            root = Path(raw)

            def timed_append(run=[0]):
                run[0] += 1
                append_all(root / f"wal-{run[0]}", events)

            append_rate = num_events / best_time(timed_append, args.repeats)

            append_all(root / "wal-ingest", events)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)

                def timed_ingest(run=[0]):
                    run[0] += 1
                    run_ingest(root / "wal-ingest", params, root / f"ckpt-{run[0]}")

                ingest_rate = num_events / best_time(timed_ingest, args.repeats)
                concurrent_ingest, concurrent_qps = concurrent_rates(
                    root / "conc", params, events
                )

        for suffix, value, unit, extra in (
            ("append", append_rate, "events/sec", {}),
            ("ingest", ingest_rate, "events/sec", {}),
            ("concurrent-ingest", concurrent_ingest, "events/sec",
             {"serving_threads": SERVING_THREADS}),
            ("concurrent-serve", concurrent_qps, "queries/sec",
             {"serving_threads": SERVING_THREADS}),
        ):
            entries.append(
                BenchEntry(
                    name=f"{label}/{suffix}",
                    value=round(value, 2),
                    unit=unit,
                    params={
                        "num_events": num_events,
                        "num_users": num_users,
                        "num_items": num_items,
                        "batch_events": BATCH_EVENTS,
                        **extra,
                    },
                    context=context,
                )
            )
            print(f"{label + '/' + suffix:45s} {value:12.1f} {unit}")

    path = Path(args.output_dir) / "BENCH_stream.json"
    append_entries(path, entries)
    print(f"appended {len(entries)} entries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
