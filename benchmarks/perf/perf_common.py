"""Shared plumbing of the perf-regression microbenchmarks.

These benchmarks are deliberately *not* pytest-benchmark suites: they are
plain scripts that measure throughput and append machine-readable entries
to the repository's ``BENCH_*.json`` trajectories (see
:mod:`repro.analysis.benchjson`), so every future perf PR is held against
the recorded baseline. ``make bench-perf`` runs them at full scale;
``make bench-smoke`` runs the same code paths at a tiny scale (seconds,
no thresholds) so the harness itself cannot rot.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.data.cuboid import RatingCuboid

#: Repository root — the default home of the BENCH_*.json trajectories.
REPO_ROOT = Path(__file__).resolve().parents[2]


def make_parser(description: str) -> argparse.ArgumentParser:
    """The flags shared by every perf script."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales, a couple of seconds total; for harness CI",
    )
    parser.add_argument(
        "--output-dir",
        default=str(REPO_ROOT),
        help="directory receiving the BENCH_*.json trajectory (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repetitions per configuration (best run is recorded)",
    )
    return parser


def synthetic_cuboid(num_ratings: int, seed: int = 0) -> RatingCuboid:
    """A cheap random cuboid of roughly ``num_ratings`` entries.

    Direct random triples (skewed item popularity) rather than the full
    synthetic generator — the benchmarks measure EM arithmetic, not data
    synthesis, so cuboid construction must stay negligible even at the
    largest scale. Coalescing merges duplicate coordinates, so ``nnz``
    lands slightly under ``num_ratings``; throughput is always reported
    against the actual ``nnz``.
    """
    rng = np.random.default_rng(seed)
    num_users = max(50, num_ratings // 40)
    num_items = max(100, num_ratings // 40)
    num_intervals = 24
    users = rng.integers(0, num_users, num_ratings)
    intervals = rng.integers(0, num_intervals, num_ratings)
    # Zipf-ish item popularity, clipped into the catalogue.
    items = np.minimum(rng.zipf(1.3, num_ratings) - 1, num_items - 1)
    scores = rng.random(num_ratings) + 0.5
    return RatingCuboid.from_arrays(
        users=users,
        intervals=intervals,
        items=items,
        scores=scores,
        num_users=num_users,
        num_intervals=num_intervals,
        num_items=num_items,
    )


def best_time(fn, repeats: int) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
