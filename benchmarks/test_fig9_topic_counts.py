"""Figure 9 — accuracy vs the number of user-oriented topics (K1) for
several time-oriented topic counts (K2).

The paper varies K1 from 10 to 100 with K2 ∈ {20, 40, 60, 80} on Digg
and observes (a) performance rises with K1 then plateaus, and (b) the
smallest K2 underperforms while larger K2 values bunch together.

At our reduced data scale the sweep runs K1 ∈ {2..16} with
K2 ∈ {2, 6, 10, 14} (the generator has 8 user topics and 14 events, so
the same saturation story plays out at proportionally smaller counts).
Assertions:

* the smallest K2 curve is clearly the worst of the family and larger
  K2 curves bunch together (the paper's W-TTCAM-20 observation);
* each curve is stable (a plateau) across K1 — no collapse at large K1.

Reproduction note (EXPERIMENTS.md): the paper's *rise* of the curve at
small K1 is muted here because our Digg substitute is strongly
context-driven (fitted λ̄ ≈ 0.1), so accuracy saturates in K1 almost
immediately; the K2 family ordering and the plateau reproduce.

The timed unit is one TTCAM fit at the default topic counts.
"""

import numpy as np

from repro.core import TTCAM
from repro.data import holdout_split
from repro.evaluation import build_queries, evaluate_ranking

from conftest import save_table

K1_GRID = (2, 4, 6, 8, 12, 16)
K2_GRID = (2, 6, 10, 14)
SEEDS = (0, 1)


def test_fig9_topic_count_sweep(benchmark, digg_data):
    cuboid, _ = digg_data
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=250, seed=0)

    curves: dict[int, list[float]] = {}
    for k2 in K2_GRID:
        curve = []
        for k1 in K1_GRID:
            vals = []
            for seed in SEEDS:
                model = TTCAM(k1, k2, max_iter=60, seed=seed).fit(split.train)
                report = evaluate_ranking(model, queries, ks=(5,), metrics=("ndcg",))
                vals.append(report.at("ndcg", 5))
            curve.append(float(np.mean(vals)))
        curves[k2] = curve

    lines = [
        "Figure 9: NDCG@5 vs number of user-oriented topics (K1) on Digg",
        "K1    " + "".join(f"K2={k2:<7d}" for k2 in K2_GRID),
    ]
    for i, k1 in enumerate(K1_GRID):
        lines.append(f"{k1:4d}  " + "".join(f"{curves[k2][i]:<10.4f}" for k2 in K2_GRID))
    save_table("fig9_topic_counts", "\n".join(lines))

    # The smallest K2 is clearly the weakest family member everywhere.
    saturated = {k2: float(np.mean(curves[k2])) for k2 in K2_GRID}
    assert saturated[2] < 0.75 * min(saturated[k2] for k2 in K2_GRID[1:])
    # Plateau: every adequately-sized curve is stable across K1.
    for k2 in K2_GRID[1:]:
        curve = np.array(curves[k2])
        assert (curve.max() - curve.min()) / curve.mean() < 0.25
    # Larger K2 never hurts at this event count (14 true events).
    assert saturated[14] >= saturated[6]

    benchmark.pedantic(
        lambda: TTCAM(8, 10, max_iter=60, seed=5).fit(split.train),
        rounds=1,
        iterations=1,
    )
