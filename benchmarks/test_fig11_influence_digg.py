"""Figure 11 — influence-probability CDFs on Digg.

The mirror image of Figure 10: on the news platform, the temporal
context dominates — the paper finds temporal-context influence above 0.5
for more than 70% of users.

Assertions: most Digg users are context-dominant and the Digg λ
distribution sits clearly below the MovieLens one (the cross-platform
contrast of Section 5.4). The timed unit is the TTCAM fit.
"""

import numpy as np

from repro.core import TTCAM
from repro.analysis.influence import (
    context_influence_cdf,
    fraction_above,
    influence_cdf,
    summarize_influence,
)

from conftest import EM_ITERS, EM_ITERS_LONG, save_table


def test_fig11_influence_cdf_digg(benchmark, digg_data, movielens_data):
    digg_cuboid, _ = digg_data
    model = TTCAM(10, 12, max_iter=EM_ITERS, seed=0).fit(digg_cuboid)
    lam = model.params_.lambda_u

    grid = np.linspace(0, 1, 11)
    _, interest_cdf = influence_cdf(lam, grid)
    _, context_cdf = context_influence_cdf(lam, grid)
    summary = summarize_influence(lam)

    lines = [
        "Figure 11: influence probability CDFs on Digg",
        f"{'x':>5s}{'CDF interest':>14s}{'CDF context':>14s}",
    ]
    for x, ci, cc in zip(grid, interest_cdf, context_cdf):
        lines.append(f"{x:5.1f}{ci:14.3f}{cc:14.3f}")
    lines.append(str(summary))
    lines.append(
        f"fraction with context influence > 0.5: {fraction_above(1 - lam, 0.5):.3f}"
    )
    save_table("fig11_influence_digg", "\n".join(lines))

    # Paper: temporal context influence > 0.5 for more than 70% of users.
    assert fraction_above(1 - lam, 0.5) > 0.7
    assert summary.mean_interest < 0.45

    # Cross-platform contrast vs Figure 10 (MovieLens).
    ml_cuboid, _ = movielens_data
    ml_model = TTCAM(10, 6, max_iter=EM_ITERS_LONG, seed=0).fit(ml_cuboid)
    assert lam.mean() < ml_model.params_.lambda_u.mean() - 0.2

    benchmark.pedantic(
        lambda: TTCAM(10, 12, max_iter=EM_ITERS, seed=1).fit(digg_cuboid),
        rounds=1,
        iterations=1,
    )
