"""Ablation — the paper's priority-queue TA vs classic round-robin TA.

Algorithm 1 pops the list whose *front item has the highest full ranking
score*, rather than round-robining all lists at equal depth (Fagin's
classic TA). This ablation measures, over real fitted queries, how many
items each strategy fully scores and how many sorted accesses it makes
before the threshold fires — both exact engines by construction (the
test re-verifies exactness against brute force on every query).

Assertions: both TA variants score only part of the catalogue, and the
paper's best-list-first strategy performs no more sorted accesses than
classic TA on average. The timed unit is a batch of paper-TA queries.
"""

import numpy as np

from repro.core import TTCAM
from repro.recommend import TemporalRecommender, bruteforce_topk, classic_ta_topk, ta_topk
from repro.recommend.ranking import QuerySpace
from repro.recommend.threshold import SortedTopicLists

from conftest import EM_ITERS, save_table


def test_ablation_ta_access_strategies(benchmark, douban_data):
    cuboid, _ = douban_data
    model = TTCAM(10, 10, max_iter=EM_ITERS, seed=0).fit(cuboid)
    matrix = model.params_.topic_item_matrix()
    lists = SortedTopicLists.build(matrix)

    rng = np.random.default_rng(11)
    users = rng.integers(0, cuboid.num_users, 120)
    intervals = rng.integers(0, cuboid.num_intervals, 120)

    stats = {"paper-TA": {"scored": [], "accesses": []},
             "classic-TA": {"scored": [], "accesses": []}}
    for u, t in zip(users, intervals):
        weights, _ = model.query_space(int(u), int(t))
        query = QuerySpace(weights, matrix)
        reference = sorted(bruteforce_topk(query, 10).scores)
        paper = ta_topk(query, lists, 10)
        classic = classic_ta_topk(query, lists, 10)
        np.testing.assert_allclose(sorted(paper.scores), reference, atol=1e-12)
        np.testing.assert_allclose(sorted(classic.scores), reference, atol=1e-12)
        stats["paper-TA"]["scored"].append(paper.items_scored)
        stats["paper-TA"]["accesses"].append(paper.sorted_accesses)
        stats["classic-TA"]["scored"].append(classic.items_scored)
        stats["classic-TA"]["accesses"].append(classic.sorted_accesses)

    lines = [
        f"Ablation: TA access strategies on Douban ({cuboid.num_items} items, "
        "top-10, 120 fitted queries; both engines verified exact)",
        f"{'engine':12s}{'items scored':>14s}{'sorted accesses':>17s}",
    ]
    means = {}
    for name, s in stats.items():
        means[name] = (float(np.mean(s["scored"])), float(np.mean(s["accesses"])))
        lines.append(f"{name:12s}{means[name][0]:14.1f}{means[name][1]:17.1f}")
    save_table("ablation_ta_variants", "\n".join(lines))

    for name, (scored, _accesses) in means.items():
        assert scored < 0.7 * cuboid.num_items, name
    # The paper's best-list-first strategy needs no more sorted accesses.
    assert means["paper-TA"][1] <= means["classic-TA"][1] * 1.05

    sample = [(int(u), int(t)) for u, t in zip(users[:20], intervals[:20])]

    def paper_batch():
        for u, t in sample:
            weights, _ = model.query_space(u, t)
            ta_topk(QuerySpace(weights, matrix), lists, 10)

    benchmark.pedantic(paper_batch, rounds=3, iterations=1)
