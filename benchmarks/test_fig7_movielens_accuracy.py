"""Figure 7 — temporal recommendation accuracy on MovieLens.

Regenerates the Precision@k / NDCG@k / F1@k curves for the eight-model
comparison on the MovieLens-profile dataset. Asserts the paper's key
MovieLens contrasts:

* UT beats TT here (movie consumption is taste-driven — the mirror image
  of Figure 6);
* the best TCAM variant is at least as good as every baseline, because
  TCAM recovers the taste component *and* the residual temporal context.

The weighted variants' accuracy deviation is documented in
EXPERIMENTS.md (see the Figure 6 bench docstring).

The timed unit is one TTCAM fit at MovieLens bench settings.
"""

from repro.core import TTCAM
from repro.data import holdout_split
from repro.evaluation import run_accuracy_experiment

from conftest import EM_ITERS_LONG, FOLDS, QUERY_CAP, save_table, standard_specs

KS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


def test_fig7_movielens_accuracy(benchmark, movielens_data):
    cuboid, _ = movielens_data
    # K2 tuned per dataset as the paper does: MovieLens's temporal
    # structure is weak (wide release waves), so fewer time topics fit.
    result = run_accuracy_experiment(
        cuboid,
        standard_specs(k1=10, k2=6, iters=EM_ITERS_LONG),
        ks=KS,
        metrics=("precision", "ndcg", "f1"),
        num_folds=FOLDS,
        max_queries=QUERY_CAP,
    )

    lines = [f"Figure 7: temporal accuracy on MovieLens ({FOLDS}-fold CV)"]
    for metric in ("precision", "ndcg", "f1"):
        lines.append(f"\n--- {metric}@k ---")
        lines.append(result.format_table(metric))
    save_table("fig7_movielens_accuracy", "\n".join(lines))

    tcam_family = ("ITCAM", "TTCAM", "W-ITCAM", "W-TTCAM")
    for k in (5, 10):
        # Taste beats temporal context on movies: UT > TT (Figure 7's
        # mirror image of Figure 6).
        assert result.at("UT", "ndcg", k) > result.at("TT", "ndcg", k)
        # The best TCAM variant tops every baseline (small tolerance for
        # cross-fold noise: TCAM's margin over UT is thin on
        # taste-dominant data, as in the paper's Figure 7 at small k).
        best = max(result.at(m, "ndcg", k) for m in tcam_family)
        for baseline in ("UT", "TT", "BPRMF", "BPTF"):
            assert best >= result.at(baseline, "ndcg", k) * 0.98

    split = holdout_split(cuboid, seed=0)
    benchmark.pedantic(
        lambda: TTCAM(10, 12, max_iter=EM_ITERS_LONG, seed=0).fit(split.train),
        rounds=1,
        iterations=1,
    )
