"""Figure 8 — online recommendation latency: TCAM-TA vs TCAM-BF vs BPTF.

The paper measures average time to produce top-k recommendations
(k = 1..20) on Douban Movie (69,908 items) and MovieLens (10,681 items):
TCAM-TA ≪ TCAM-BF < BPTF, all methods slower on the larger catalogue.

Two parts:

**Part A — engine scaling at paper-scale catalogues.** The retrieval
engines are exercised on topic–item matrices with the paper's topic
counts (K1=60, K2=40) and the paper's actual catalogue sizes (Douban
69,908 items, MovieLens 10,681), with query vectors whose sparsity
matches fitted TCAM queries (a user has a handful of active topics).
The TCAM-TA engine is the block-vectorised Threshold Algorithm (exact,
same access pattern). Assertions: TA beats the brute-force scan on both
catalogues, TA touches only a small fraction of the catalogue, and the
full-scan engines slow down with catalogue size.

**Part B — fitted models at profile scale.** Real fitted TTCAM models
answer real queries; the implementation-independent efficiency measure
(items fully scored by TA vs the catalogue size) is reported and
asserted.

Reproduction note (EXPERIMENTS.md): the paper's BPTF-is-slowest-online
ordering is implementation-bound — its Java scorer evaluates a 3-way
product per item, while our numpy BPTF scan is one (V×d) GEMV that can
be faster than the (V×K) TCAM scan when d < K. We therefore report BPTF
latency without asserting its position.
"""

import time

import numpy as np

from repro.core import TTCAM
from repro.recommend import TemporalRecommender, batched_ta_topk, bruteforce_topk
from repro.recommend.ranking import QuerySpace, rank_order
from repro.recommend.threshold import SortedTopicLists

from conftest import save_table

K_GRID = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
K1, K2, BPTF_DIM = 60, 40, 32
NUM_QUERIES = 25


def paper_scale_parameters(num_items, rng):
    """Fitted-like TCAM parameters and BPTF factors at paper topic counts.

    Topic sparsity and query sparsity are matched to what EM produces on
    the profile datasets: topics concentrate on a small item subset and a
    user's interest touches a handful of topics.
    """
    matrix = rng.dirichlet(np.full(num_items, 0.03), size=K1 + K2)
    item_factors = rng.normal(0, 0.3, (num_items, BPTF_DIM))
    return matrix, item_factors


def sample_query_weights(rng):
    """Sparse expanded query vector ϑ_q = ⟨λ·θ_u, (1−λ)·θ′_t⟩."""
    lam = rng.beta(4, 3)
    theta_u = rng.dirichlet(np.full(K1, 0.02))
    theta_t = rng.dirichlet(np.full(K2, 0.05))
    return np.concatenate([lam * theta_u, (1 - lam) * theta_t])


def measure_engines(num_items, rng):
    matrix, item_factors = paper_scale_parameters(num_items, rng)
    lists = SortedTopicLists.build(matrix)
    queries = [sample_query_weights(rng) for _ in range(NUM_QUERIES)]
    bptf_contexts = rng.normal(0, 0.3, (NUM_QUERIES, BPTF_DIM))

    rows = {}
    scanned = []
    for k in K_GRID:
        start = time.perf_counter()
        for weights in queries:
            result = batched_ta_topk(QuerySpace(weights, matrix), lists, k)
            if k == 10:
                scanned.append(result.items_scored)
        ta_ms = (time.perf_counter() - start) * 1000 / NUM_QUERIES

        start = time.perf_counter()
        for weights in queries:
            bruteforce_topk(QuerySpace(weights, matrix), k)
        bf_ms = (time.perf_counter() - start) * 1000 / NUM_QUERIES

        start = time.perf_counter()
        for context in bptf_contexts:
            rank_order(item_factors @ context, k)
        bptf_ms = (time.perf_counter() - start) * 1000 / NUM_QUERIES

        rows[k] = {"ta": ta_ms, "bf": bf_ms, "bptf": bptf_ms}
    return rows, float(np.mean(scanned))


def test_fig8_online_recommendation_efficiency(benchmark, douban_data, movielens_data):
    rng = np.random.default_rng(3)
    catalogues = {"Douban Movie": 69_908, "MovieLens": 10_681}

    lines = [
        "Figure 8: online top-k latency (ms/query), paper-scale engines "
        f"(K1={K1}, K2={K2})"
    ]
    part_a = {}
    for name, num_items in catalogues.items():
        rows, mean_scanned = measure_engines(num_items, rng)
        part_a[name] = (rows, mean_scanned, num_items)
        lines.append(f"\n--- {name} ({num_items} items) ---")
        lines.append(f"{'k':>4s}{'TCAM-TA':>10s}{'TCAM-BF':>10s}{'BPTF':>10s}")
        for k in K_GRID:
            t = rows[k]
            lines.append(f"{k:4d}{t['ta']:10.3f}{t['bf']:10.3f}{t['bptf']:10.3f}")
        lines.append(f"TA items scored at k=10: {mean_scanned:.0f} of {num_items}")

    # Part B: fitted models at profile scale — access-count accounting.
    lines.append("\n--- fitted models (profile scale): TA access fraction ---")
    part_b = {}
    for name, (cuboid, _truth) in (
        ("Douban Movie", douban_data),
        ("MovieLens", movielens_data),
    ):
        model = TTCAM(10, 10, max_iter=40, seed=0).fit(cuboid)
        recommender = TemporalRecommender(model)
        recommender.precompute()
        users = rng.integers(0, cuboid.num_users, 100)
        intervals = rng.integers(0, cuboid.num_intervals, 100)
        fractions = []
        for u, t in zip(users, intervals):
            # Item-at-a-time TA: the implementation-independent accounting.
            result = recommender.recommend(int(u), int(t), k=10, method="ta")
            fractions.append(result.items_scored / cuboid.num_items)
        part_b[name] = float(np.mean(fractions))
        lines.append(
            f"{name}: TA fully scores {part_b[name]:.1%} of {cuboid.num_items} items"
        )
    save_table("fig8_efficiency", "\n".join(lines))

    # Paper-shape assertions.
    douban_rows, douban_scanned, douban_items = part_a["Douban Movie"]
    ml_rows, _, _ = part_a["MovieLens"]
    ta_mean = np.mean([douban_rows[k]["ta"] for k in K_GRID])
    bf_mean = np.mean([douban_rows[k]["bf"] for k in K_GRID])
    assert ta_mean < bf_mean, "TA must beat the brute-force scan at 70k items"
    assert douban_scanned < 0.25 * douban_items
    # Latency (weakly) increases with k for TA; generous tolerance since
    # block-granular latency is noisy at sub-millisecond scale.
    assert douban_rows[20]["ta"] >= douban_rows[1]["ta"] * 0.5
    # Full-scan engines cost more on the larger catalogue.
    assert bf_mean > np.mean([ml_rows[k]["bf"] for k in K_GRID])
    # Fitted models: TA touches only part of the catalogue.
    for fraction in part_b.values():
        assert fraction < 0.6

    # pytest-benchmark unit: one paper-scale TA top-10 query.
    matrix, _ = paper_scale_parameters(69_908, np.random.default_rng(5))
    lists = SortedTopicLists.build(matrix)
    weights = sample_query_weights(np.random.default_rng(6))
    benchmark(lambda: batched_ta_topk(QuerySpace(weights, matrix), lists, 10))
