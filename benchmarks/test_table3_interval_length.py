"""Table 3 — NDCG@5 as a function of the time-interval length on Digg.

The paper sweeps the interval length from 1 to 10 days on Digg and finds
an inverted-U: accuracy first rises (denser per-interval data), then
falls (temporal influence diluted), peaking at 3 days, with the TCAM
models dominating TT at every granularity.

Here a Digg-like dataset is generated at 1-day granularity (T = 120
days) and re-bucketed with ``coarsen_intervals`` for each row of the
sweep. Assertions:

* every TCAM variant beats TT at every interval length (the paper's
  second observation);
* ITCAM/W-ITCAM show the inverted-U — their best length is an interior
  point of the sweep and clearly beats the 10-day extreme.

Reproduction note: TTCAM is nearly flat across granularities in our
substitute — sharing time-oriented topics across intervals is exactly
what removes the per-interval sparsity penalty that drives the paper's
left side of the U (recorded in EXPERIMENTS.md).

The timed unit is one coarsen + fit + evaluate cycle at 3 days.
"""

import numpy as np

from repro.baselines import BPTF, TimeTopicModel
from repro.core import ITCAM, TTCAM
from repro.data import holdout_split
from repro.data.synthetic import SyntheticConfig, auto_events, generate
from repro.evaluation import build_queries, evaluate_ranking

from conftest import save_table

LENGTHS = (1, 2, 3, 4, 5, 6, 8, 10)
SEEDS = (0, 1, 2)


def daily_digg_config() -> SyntheticConfig:
    """Digg-like data at 1-day granularity (T = 120 days)."""
    num_intervals = 120
    return SyntheticConfig(
        name="digg-daily",
        num_users=700,
        num_items=360,
        num_intervals=num_intervals,
        num_user_topics=8,
        events=auto_events(24, num_intervals, rng_seed=7, width=1.8, num_items=6),
        lambda_alpha=2.0,
        lambda_beta=3.0,
        mean_ratings_per_user=40.0,
        topic_sparsity=0.02,
        popularity_exponent=1.1,
        popularity_offset=25.0,
        popular_leak=0.3,
        noise_fraction=0.15,
        item_lifecycle=2.5,
        distinct_items=True,
        item_prefix="story",
        seed=7,
    )


def models_for(seed):
    return {
        "TT": TimeTopicModel(num_topics=10, max_iter=50, seed=seed),
        "ITCAM": ITCAM(num_user_topics=8, max_iter=50, seed=seed),
        "TTCAM": TTCAM(8, 10, max_iter=50, seed=seed),
        "W-ITCAM": ITCAM(num_user_topics=8, max_iter=50, weighted=True, seed=seed),
        "W-TTCAM": TTCAM(8, 10, max_iter=50, weighted=True, seed=seed),
        "BPTF": BPTF(num_epochs=25, seed=seed),
    }


def evaluate_at_length(cuboid, days, seed):
    coarse = cuboid.coarsen_intervals(days)
    split = holdout_split(coarse, seed=seed)
    queries = build_queries(split, max_queries=250, seed=seed)
    scores = {}
    for name, model in models_for(seed).items():
        model.fit(split.train)
        report = evaluate_ranking(model, queries, ks=(5,), metrics=("ndcg",))
        scores[name] = report.at("ndcg", 5)
    return scores


def test_table3_interval_length_sweep(benchmark):
    cuboid, _ = generate(daily_digg_config())

    names = list(models_for(0))
    table: dict[int, dict[str, float]] = {}
    for days in LENGTHS:
        runs = [evaluate_at_length(cuboid, days, seed) for seed in SEEDS]
        table[days] = {
            name: float(np.mean([run[name] for run in runs])) for name in names
        }

    lines = [
        "Table 3: NDCG@5 vs interval length on Digg-like data "
        f"(mean of {len(SEEDS)} splits)",
        "days  " + "".join(f"{name:>9s}" for name in names),
    ]
    for days in LENGTHS:
        lines.append(
            f"{days:4d}  " + "".join(f"{table[days][name]:9.4f}" for name in names)
        )
    save_table("table3_interval_length", "\n".join(lines))

    # TCAM variants dominate TT at every granularity.
    for days in LENGTHS:
        assert table[days]["ITCAM"] > table[days]["TT"]
        assert table[days]["TTCAM"] > table[days]["TT"] * 0.85

    # ITCAM's inverted-U: an interior optimum that clearly beats the
    # 10-day extreme (the paper's headline trend, peak at ~3 days).
    itcam_curve = [table[days]["ITCAM"] for days in LENGTHS]
    best_index = int(np.argmax(itcam_curve))
    assert LENGTHS[best_index] < 10
    assert itcam_curve[best_index] > table[10]["ITCAM"] * 1.1

    benchmark.pedantic(
        lambda: evaluate_at_length(cuboid, 3, seed=9), rounds=1, iterations=1
    )
