"""Table 2 — basic statistics of the four datasets.

Regenerates the dataset-statistics table for the four synthetic profile
substitutes and checks the relative shapes the paper's Table 2 exhibits
(Douban's catalogue bigger than MovieLens's, Delicious's vocabulary the
largest, Digg/MovieLens user-heavy). The timed unit is full generation of
the Digg-profile dataset.
"""

from repro.data import generate, profile

from conftest import SCALE, save_table


def test_table2_dataset_statistics(benchmark, digg_data, movielens_data, douban_data, delicious_data):
    datasets = {
        "Digg": digg_data,
        "MovieLens": movielens_data,
        "Douban Movie": douban_data,
        "Delicious": delicious_data,
    }

    lines = [
        "Table 2: basic statistics of the four (synthetic-substitute) datasets",
        f"{'dataset':14s}{'# users':>10s}{'# items':>10s}{'# ratings':>12s}{'# intervals':>13s}",
    ]
    stats = {}
    for name, (cuboid, _truth) in datasets.items():
        stats[name] = cuboid
        lines.append(
            f"{name:14s}{cuboid.num_users:>10d}{cuboid.num_items:>10d}"
            f"{cuboid.nnz:>12d}{cuboid.num_intervals:>13d}"
        )
    save_table("table2_datasets", "\n".join(lines))

    # Paper-shape assertions (relative, matching Table 2's character).
    assert stats["Douban Movie"].num_items > stats["MovieLens"].num_items
    assert stats["Delicious"].num_items >= stats["Douban Movie"].num_items
    assert stats["Digg"].num_users > stats["Digg"].num_items
    assert stats["MovieLens"].num_users > stats["MovieLens"].num_items
    for cuboid in stats.values():
        assert cuboid.nnz > 1000

    # Timed unit: generating the Digg-profile dataset from scratch.
    benchmark.pedantic(
        lambda: generate(profile("digg", scale=SCALE)), rounds=3, iterations=1
    )
