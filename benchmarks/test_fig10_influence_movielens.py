"""Figure 10 — influence-probability CDFs on MovieLens.

The paper plots the cumulative distribution of the learned
personal-interest influence λ_u (Fig 10a) and temporal-context influence
1−λ_u (Fig 10b) across MovieLens users, finding that personal interest
dominates: the large majority of users sit at high λ.

Assertions: most users are interest-dominant (λ > 0.5), the mean λ is
high, and the interest CDF stochastically dominates the context CDF.
The timed unit is the W-TTCAM fit that produces the distribution.
"""

import numpy as np

from repro.core import TTCAM
from repro.analysis.influence import (
    context_influence_cdf,
    fraction_above,
    influence_cdf,
    summarize_influence,
)

from conftest import EM_ITERS_LONG, save_table


def test_fig10_influence_cdf_movielens(benchmark, movielens_data):
    cuboid, _ = movielens_data
    model = TTCAM(10, 6, max_iter=EM_ITERS_LONG, weighted=False, seed=0).fit(cuboid)
    lam = model.params_.lambda_u

    grid = np.linspace(0, 1, 11)
    _, interest_cdf = influence_cdf(lam, grid)
    _, context_cdf = context_influence_cdf(lam, grid)
    summary = summarize_influence(lam)

    lines = [
        "Figure 10: influence probability CDFs on MovieLens",
        f"{'x':>5s}{'CDF interest':>14s}{'CDF context':>14s}",
    ]
    for x, ci, cc in zip(grid, interest_cdf, context_cdf):
        lines.append(f"{x:5.1f}{ci:14.3f}{cc:14.3f}")
    lines.append(str(summary))
    lines.append(f"fraction with lambda > 0.5: {fraction_above(lam, 0.5):.3f}")
    save_table("fig10_influence_movielens", "\n".join(lines))

    # Paper shape: personal interest dominates on MovieLens.
    assert fraction_above(lam, 0.5) > 0.6
    assert summary.mean_interest > 0.55
    # Interest CDF lies below the context CDF (interest mass sits higher).
    assert np.all(interest_cdf[1:-1] <= context_cdf[1:-1] + 1e-9)

    benchmark.pedantic(
        lambda: TTCAM(10, 6, max_iter=EM_ITERS_LONG, seed=1).fit(cuboid),
        rounds=1,
        iterations=1,
    )
