# Convenience targets for the TCAM reproduction.

.PHONY: install test test-robustness bench examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

test-robustness:
	pytest tests/robustness/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install test bench
