# Convenience targets for the TCAM reproduction.

.PHONY: install test test-robustness bench bench-perf bench-serve bench-smoke examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

test-robustness:
	pytest tests/robustness/

bench:
	pytest benchmarks/ --benchmark-only

# Full-scale perf regression run; appends to BENCH_em.json / BENCH_topk.json
# / BENCH_serve.json at the repo root (see docs/performance.md).
bench-perf:
	PYTHONPATH=src python benchmarks/perf/bench_em.py
	PYTHONPATH=src python benchmarks/perf/bench_topk.py
	PYTHONPATH=src python benchmarks/perf/bench_serve.py

# Batch-serving benchmark alone; appends to BENCH_serve.json.
bench-serve:
	PYTHONPATH=src python benchmarks/perf/bench_serve.py

# Tiny-scale run of the same harness (seconds); writes to a scratch dir so
# the committed trajectories are never polluted by smoke numbers.
bench-smoke:
	PYTHONPATH=src python benchmarks/perf/bench_em.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke
	PYTHONPATH=src python benchmarks/perf/bench_topk.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke
	PYTHONPATH=src python benchmarks/perf/bench_serve.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install test bench
