# Convenience targets for the TCAM reproduction.

.PHONY: install test test-robustness test-sanitize test-stream-faults test-service service-smoke lint analyze audit prove typecheck check bench bench-perf bench-serve bench-service bench-stream bench-smoke examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Static-analysis gate (see docs/static-analysis.md). The domain linter
# is part of the package and always runs; ruff is skipped with a notice
# when it is not installed (the offline image has no pip access).
lint:
	PYTHONPATH=src python -m repro.tooling.lint src/repro
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi

# Static concurrency-race analyzer (rules TCAM010-TCAM013); exits
# non-zero on any unsuppressed finding, see docs/static-analysis.md.
analyze:
	PYTHONPATH=src python -m repro.tooling.races src/repro

# Resource-lifecycle & crash-consistency auditor (rules TCAM020-TCAM025);
# also covers the bench harnesses, which spawn real server processes.
audit:
	PYTHONPATH=src python -m repro.tooling.lifecycle src/repro benchmarks/perf

# Determinism & dtype-flow verifier for the bitwise contracts (rules
# TCAM030-TCAM035), rooted at @bit_deterministic markers; see
# docs/static-analysis.md.
prove:
	PYTHONPATH=src python -m repro.tooling.determinism src/repro

# mypy --strict over src/repro, configured in pyproject.toml. Skipped
# with a notice when mypy is not installed locally; CI always runs it.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (CI runs it)"; \
	fi

check: lint analyze audit prove typecheck test

test-robustness:
	pytest tests/robustness/

# Tier-1 engine + serving tests with the runtime sanitizer armed: every
# E-step verifies disjoint writes, simplex invariants and fixed-order
# reduction while the suite runs.
test-sanitize:
	TCAM_SANITIZE=1 pytest -q tests/core tests/recommend

# Streaming fault-injection suite (WAL torn writes, kill/resume, swap
# gate) with the runtime sanitizer armed — the crash-safety gate CI runs.
test-stream-faults:
	TCAM_SANITIZE=1 pytest -q tests/streaming -m faults

# Multi-process serving-service suite: spawns real worker processes and
# concurrent client processes (hot swap under load, drain semantics).
test-service:
	pytest -q tests/serving_service

# End-to-end service smoke (seconds): starts a real `tcam serve`
# subprocess, bursts concurrent clients against it, hot-swaps a
# candidate snapshot once, and requires a clean SIGTERM drain.
service-smoke:
	PYTHONPATH=src python benchmarks/perf/bench_service.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-service-smoke

bench:
	pytest benchmarks/ --benchmark-only

# Full-scale perf regression run; appends to BENCH_em.json / BENCH_topk.json
# / BENCH_serve.json / BENCH_service.json at the repo root (see
# docs/performance.md).
bench-perf:
	PYTHONPATH=src python benchmarks/perf/bench_em.py
	PYTHONPATH=src python benchmarks/perf/bench_topk.py
	PYTHONPATH=src python benchmarks/perf/bench_serve.py
	PYTHONPATH=src python benchmarks/perf/bench_service.py

# Batch-serving benchmark alone; appends to BENCH_serve.json.
bench-serve:
	PYTHONPATH=src python benchmarks/perf/bench_serve.py

# Process-parallel serving-service benchmark (tcam serve end to end);
# appends to BENCH_service.json.
bench-service:
	PYTHONPATH=src python benchmarks/perf/bench_service.py

# Streaming ingestion benchmark: WAL append rate, fold-in rate, and
# sustained ingest-while-serving; appends to BENCH_stream.json.
bench-stream:
	PYTHONPATH=src python benchmarks/perf/bench_stream.py

# Tiny-scale run of the same harness (seconds); writes to a scratch dir so
# the committed trajectories are never polluted by smoke numbers. The serve
# smoke includes the scaled-down mmap+quantized million tier (one spawned
# process per variant), so that machinery cannot rot between full runs.
bench-smoke:
	PYTHONPATH=src python benchmarks/perf/bench_em.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke
	PYTHONPATH=src python benchmarks/perf/bench_topk.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke
	PYTHONPATH=src python benchmarks/perf/bench_serve.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke
	PYTHONPATH=src python benchmarks/perf/bench_stream.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke
	PYTHONPATH=src python benchmarks/perf/bench_service.py --smoke --output-dir $${TMPDIR:-/tmp}/tcam-bench-smoke

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: install test bench
